// Package core assembles the full Autobahn replica: the lane-based data
// dissemination layer (internal/lane), the slot-based consensus engine
// (internal/consensus), non-blocking data synchronization (internal/fetch)
// and deterministic total ordering (internal/order), behind the
// runtime.Protocol interface so one implementation runs under both the
// discrete-event simulator and the real TCP transport.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/fetch"
	"repro/internal/lane"
	"repro/internal/order"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Timer tag kinds used by the node.
const (
	tagConsensusView uint8 = iota + 1
	tagConsensusFast
	tagConsensusCoverage
	tagFetchTick
	tagCarRetx
)

// carRetransmit is how often a still-uncertified own car is re-broadcast
// (crash/partition recovery: lost proposals or votes must be repeated).
const carRetransmit = 500 * time.Millisecond

// tipFetchDefer is the grace period before an optimistic-tip fetch is
// actually sent: the tip's live broadcast usually lands first (§5.5.2
// notes at most one extra sync request in the worst case).
const tipFetchDefer = 150 * time.Millisecond

// Reputation bounds (§B.1): a lane at or below repOptimisticMin no longer
// gets optimistic tips in this replica's cuts until commits restore it.
const (
	repMax           = 8
	repOptimisticMin = 4
	repPenalty       = 3 // per served critical-path tip sync
	repRegainEvery   = 8 // committed cars per point regained
)

// Config holds every Autobahn deployment knob. Zero values take defaults
// matching the paper's evaluation setup (§6).
type Config struct {
	Committee types.Committee
	Self      types.NodeID
	Suite     crypto.Suite
	// VerifySigs enables full signature verification everywhere. Large
	// simulations disable it and charge crypto through the network model.
	VerifySigs bool

	// FastPath enables the 1-round commit (§5.2.1); default set by caller.
	FastPath bool
	// OptimisticTips enables uncertified tip proposals (§5.5.2).
	OptimisticTips bool
	// WeakVotes enables the §5.5.2 weak/strong voting refinement: replicas
	// missing optimistic tip data vote "weak" (agreement only) at once and
	// "strong" when the data lands; PrepareQCs need f+1 strong votes among
	// the quorum. Requires OptimisticTips.
	WeakVotes bool
	// Reputation enables the §B.1 lane-reputation mechanism: a replica
	// that is forced (as leader) to serve critical-path tip syncs for a
	// lane downgrades that lane and proposes only its certified tips until
	// committed cars restore its standing. Requires OptimisticTips.
	Reputation bool
	// ViewTimeout is the consensus progress timer (default 1s).
	ViewTimeout time.Duration
	// FastPathWait is the leader's extra wait for n votes (default 20ms).
	FastPathWait time.Duration
	// MaxParallel bounds concurrent consensus slots, k (default 4).
	MaxParallel int
	// Coverage is the lane-coverage threshold (default n-f).
	Coverage int
	// CoverageDelay relaxes coverage after this long (default 50ms).
	CoverageDelay time.Duration
	// MinProposalGap paces consecutive proposals (default 5ms).
	MinProposalGap time.Duration
	// FetchTick is the sync retry granularity (default 100ms).
	FetchTick time.Duration
	// PipelineCars allows multiple un-certified own cars in flight
	// (§5.5.1; default 1 = disabled, matching the paper's prototype).
	PipelineCars int

	// Shards enables the parallel data plane (see shard.go): when > 1 and
	// the runtime honors runtime.Sharder (the TCP/local transport loop
	// does; the discrete-event simulator does not and must be left at the
	// 0/1 default), lane traffic is processed on Shards worker goroutines
	// (lane i → shard i mod Shards) while consensus stays serialized.
	// Values above the committee size are clamped — a shard without a
	// lane would never receive an event.
	Shards int

	// SequentialVerify is the large-committee baseline switch: the
	// verifier is used raw — no share memo, no whole-certificate memo,
	// no parallel striping — so every certificate costs its full
	// per-share signature-verification bill on every arrival. Benchmarks
	// only; requires VerifySigs.
	SequentialVerify bool

	// Journal durably records safety-critical protocol state before it is
	// externalized, and seeds recovery on restart (default: NopJournal —
	// the replica restarts with amnesia). See journal.go. Sharded
	// deployments require a journal that is safe for concurrent appenders
	// (NewWALJournal/NewMemJournal are).
	Journal Journal
	// GroupCommit gates outbound sends behind the journal's group-commit
	// barrier: during an event handler, sends accumulate instead of going
	// out, and Flush (called by the runtime after each event burst)
	// performs one Journal.Sync covering every record the burst appended
	// before releasing them — write-before-externalize at amortized
	// cost. Requires a runtime that calls runtime.Flusher (the TCP
	// transport's loop does; the simulator does not — simulated
	// deployments must leave this off).
	GroupCommit bool
	// OnFatal, when set, is invoked (once, from its own goroutine) when
	// the replica halts on an unrecoverable journal failure: a Sync error
	// means write-before-externalize can no longer be guaranteed, so the
	// node drops its gated sends and stops externalizing instead of
	// silently running without durability. The callback typically stops
	// the hosting replica. Nil falls back to halting silently (the sticky
	// journal error still reports via Journal state).
	OnFatal func(error)
	// Execution enables the deterministic execution layer (internal/exec):
	// committed entries run through an account state machine whose running
	// AppHash rides on every emitted runtime.Committed for cross-replica
	// divergence checking. Default off — execution-off deployments behave
	// byte-identically to before the layer existed.
	Execution bool
	// SnapshotEvery checkpoints the execution state each time the
	// execution frontier crosses this many slots, truncating the journal
	// and lane stores beneath the checkpoint, and arms snapshot-based
	// state sync (a replica two intervals behind fetches state instead of
	// history). 0 disables. Requires Execution and Snapshots.
	SnapshotEvery types.Slot
	// Snapshots persists the latest snapshot (see SnapshotStore). Nil
	// disables snapshotting even with SnapshotEvery set — truncation
	// without a durable checkpoint would lose data.
	Snapshots SnapshotStore
	// Sink receives the totally ordered, execution-ready batches.
	Sink runtime.CommitSink
	// ConsensusTrace, when non-nil, receives verbose consensus engine
	// events (tests only).
	ConsensusTrace func(format string, args ...any)
}

func (c *Config) fill() {
	if c.FetchTick == 0 {
		c.FetchTick = 100 * time.Millisecond
	}
	if c.Sink == nil {
		c.Sink = runtime.NopSink
	}
	if c.Journal == nil {
		c.Journal = NopJournal{}
	}
	if n := c.Committee.Size(); c.Shards > n {
		c.Shards = n
	}
}

// Node is one Autobahn replica.
type Node struct {
	cfg      Config
	signer   crypto.Signer
	verifier crypto.Verifier
	// vcache is the verified-signature memo behind verifier when
	// VerifySigs is on (nil otherwise): the transport's pre-verification
	// workers populate it, the state machines' inline checks hit it.
	vcache *crypto.VerifyCache

	// lanePV / consPV are the stateless signature checkers composed by
	// PreVerify (see preverify.go).
	lanePV lane.PreVerifier
	consPV consensus.PreVerifier

	lanes   *lane.State
	engine  *consensus.Engine
	orderer *order.Orderer
	fetcher *fetch.Manager

	// recentNotices retains commit certificates to serve CommitRequests
	// from lagging replicas (bounded window).
	recentNotices map[types.Slot]*types.CommitNotice
	maxNotice     types.Slot

	// lastRetxPos tracks the outstanding car seen at the previous
	// retransmit tick (rebroadcast only if still stuck a tick later).
	lastRetxPos types.Pos

	// stuckSlot tracks an undecided execution-frontier slot seen at the
	// previous fetch tick while a later slot was already decided — the
	// signature of a lost CommitNotice (see retryMissingDecision).
	stuckSlot types.Slot

	// reputation tracks per-lane standing for the §B.1 mechanism: serving
	// a critical-path tip sync for a lane costs repPenalty points; every
	// repRegainEvery committed cars of the lane restore one.
	reputation []int
	repCommits []int

	// tipFetchQueue defers optimistic-tip fetches briefly: live broadcast
	// almost always delivers the tip first, and eagerly fetching on every
	// Prepare floods a congested replica with duplicate bulk data.
	tipFetchQueue []deferredTipFetch

	// Execution layer (cfg.Execution): the deterministic machine, the
	// latest snapshot (manifest + encoded form + state, served to peers)
	// and the slot of the last checkpoint.
	machine   *exec.Machine
	tamper    bool // test hook: corrupt digests fed to the machine
	lastSnap  types.Slot
	snapMan   *exec.Manifest
	snapEnc   []byte
	snapState []byte

	// State-sync client (one sync in flight at most): pacing/rotation in
	// the tracker, manifest and chunk assembly here.
	snapSync   fetch.SnapTracker
	syncMan    *exec.Manifest
	syncChunks [][]byte
	syncGot    int

	// recovery holds the journal snapshot between NewNode (pure state
	// restoration) and Init (commit replay, which needs a Context);
	// replaying suppresses re-journaling the recovered notices.
	recovery  *Recovered
	replaying bool

	// Group-commit state (cfg.GroupCommit): handlers send through gctx,
	// which defers into pending until Flush syncs the journal and
	// releases them (see Flush).
	gctx    gatedContext
	pending []pendingSend

	// Sharded data plane (cfg.Shards > 1; see shard.go): per-shard worker
	// state, and the control plane's notice-fed snapshot of lane tips.
	sharded bool
	shards  []*shardState
	tips    *tipTable

	// Fatal-halt state: once the journal barrier fails, the node stops
	// releasing gated sends (nothing un-journaled may externalize) and
	// reports through cfg.OnFatal exactly once. Atomic/once because
	// Flush (control loop) and FlushShard (shard workers) race.
	halted    atomic.Bool
	fatalOnce sync.Once

	// Stats (exposed for tests and the harness). Atomic because shard
	// workers and the control loop count concurrently.
	stats nodeStats

	ctx runtime.Context // valid during event processing
}

type deferredTipFetch struct {
	leader types.NodeID
	tip    types.TipRef
	slot   types.Slot
	view   types.View
	due    time.Duration
}

// Stats is a point-in-time snapshot of node-level protocol counters.
type Stats struct {
	BatchesProposed    uint64
	ProposalsReceived  uint64
	VotesSent          uint64
	SlotsDecided       uint64
	EntriesOrdered     uint64
	TxOrdered          uint64
	SyncRequestsSent   uint64
	SyncRepliesServed  uint64
	TimeoutsSent       uint64
	SnapshotsInstalled uint64
	// SnapshotFrontier is the slot of the latest local snapshot (0 when
	// none) — a gauge, not a counter, safe to poll from outside the
	// node's event loop.
	SnapshotFrontier uint64
}

// nodeStats is the live (atomic) counter block behind Stats.
type nodeStats struct {
	BatchesProposed    atomic.Uint64
	ProposalsReceived  atomic.Uint64
	VotesSent          atomic.Uint64
	SlotsDecided       atomic.Uint64
	EntriesOrdered     atomic.Uint64
	TxOrdered          atomic.Uint64
	SyncRequestsSent   atomic.Uint64
	SyncRepliesServed  atomic.Uint64
	TimeoutsSent       atomic.Uint64
	SnapshotsInstalled atomic.Uint64
	SnapshotFrontier   atomic.Uint64
}

func (s *nodeStats) snapshot() Stats {
	return Stats{
		BatchesProposed:    s.BatchesProposed.Load(),
		ProposalsReceived:  s.ProposalsReceived.Load(),
		VotesSent:          s.VotesSent.Load(),
		SlotsDecided:       s.SlotsDecided.Load(),
		EntriesOrdered:     s.EntriesOrdered.Load(),
		TxOrdered:          s.TxOrdered.Load(),
		SyncRequestsSent:   s.SyncRequestsSent.Load(),
		SyncRepliesServed:  s.SyncRepliesServed.Load(),
		TimeoutsSent:       s.TimeoutsSent.Load(),
		SnapshotsInstalled: s.SnapshotsInstalled.Load(),
		SnapshotFrontier:   s.SnapshotFrontier.Load(),
	}
}

var _ runtime.Protocol = (*Node)(nil)

// NewNode builds an Autobahn replica.
func NewNode(cfg Config) *Node {
	cfg.fill()
	n := &Node{
		cfg:           cfg,
		signer:        cfg.Suite.Signer(cfg.Self),
		verifier:      cfg.Suite.Verifier(),
		recentNotices: make(map[types.Slot]*types.CommitNotice),
	}
	if cfg.VerifySigs {
		if cfg.SequentialVerify {
			// Benchmark baseline: the marker wrapper pins quorum helpers
			// and BatchVerifier to one raw Verify per share — no memo, no
			// batching, no striping.
			n.verifier = crypto.Sequential(n.verifier)
		} else {
			n.vcache = crypto.NewVerifyCache(n.verifier, 0)
			n.verifier = n.vcache
		}
	}
	n.lanePV = lane.PreVerifier{Committee: cfg.Committee, Verifier: n.verifier}
	n.consPV = consensus.PreVerifier{
		Committee:      cfg.Committee,
		Verifier:       n.verifier,
		OptimisticTips: cfg.OptimisticTips,
	}
	if cfg.Execution {
		n.machine = exec.New()
	}
	n.reputation = make([]int, cfg.Committee.Size())
	n.repCommits = make([]int, cfg.Committee.Size())
	for i := range n.reputation {
		n.reputation[i] = repMax
	}
	n.lanes = lane.NewState(lane.Config{
		Committee:       cfg.Committee,
		Self:            cfg.Self,
		Signer:          n.signer,
		Verifier:        n.verifier,
		VerifyProposals: cfg.VerifySigs,
		PipelineCars:    cfg.PipelineCars,
		Journal:         laneJournal{cfg.Journal},
	})
	n.orderer = order.NewOrderer(cfg.Committee, n.lanes.Store())
	n.fetcher = fetch.NewManager(fetch.Config{Self: cfg.Self})
	n.engine = consensus.NewEngine(consensus.Config{
		Committee:      cfg.Committee,
		Self:           cfg.Self,
		Signer:         n.signer,
		Verifier:       n.verifier,
		VerifySigs:     cfg.VerifySigs,
		FastPath:       cfg.FastPath,
		FastPathWait:   cfg.FastPathWait,
		OptimisticTips: cfg.OptimisticTips,
		WeakVotes:      cfg.WeakVotes,
		ViewTimeout:    cfg.ViewTimeout,
		MaxParallel:    cfg.MaxParallel,
		Coverage:       cfg.Coverage,
		CoverageDelay:  cfg.CoverageDelay,
		MinProposalGap: cfg.MinProposalGap,
		Journal:        consJournal{n},
		Trace:          cfg.ConsensusTrace,
	}, (*consensusEnv)(n), (*cutProvider)(n))
	n.sharded = cfg.Shards > 1
	if n.sharded {
		n.tips = newTipTable(cfg.Committee.Size(), cfg.Self)
		n.shards = make([]*shardState, cfg.Shards)
		for i := range n.shards {
			n.shards[i] = &shardState{
				n:       n,
				idx:     i,
				notices: make(map[types.NodeID]*laneNotice),
			}
		}
	}
	n.recover()
	if n.sharded {
		// Recovery may have restored own-lane tips (NewNode runs before
		// any goroutine exists, so reading lane state here is safe); seed
		// the control snapshot so the first cut is not blind to them.
		n.tips.ownTip = n.lanes.OptimisticTip(cfg.Self)
		n.tips.ownCert = n.lanes.CertifiedTip(cfg.Self)
	}
	return n
}

// recover rebuilds pre-crash state from the journal: vote frontiers and
// own-lane production in NewNode (pure state, no effects), and the
// decided-slot replay deferred to Init (it emits fetches and may
// propose, which need a runtime Context). A fresh journal is a no-op.
//
// With snapshots on there are two frontiers: the journal's and the
// persisted snapshot's. Normally the journal is at or ahead of the
// snapshot (the snapshot is saved, then the journal truncates — never
// the reverse), but a crash that tears the journal's tail, or lands
// between snapshot-commit and WAL-truncate on a log whose 'x' record was
// in the torn region, can leave the snapshot newer. Recovery takes the
// newer of the two and repairs the journal when the snapshot wins.
func (n *Node) recover() {
	rec := n.cfg.Journal.Recover()
	man, state := n.loadSnapshot()
	if man != nil && len(man.Frontier) == n.cfg.Committee.Size() {
		if man.Next > rec.NextExec {
			rec.NextExec = man.Next
			rec.Frontier = man.Frontier
			rec.FrontierDigests = man.Digests
			rec.AppHash = man.AppHash
			rec.ChainCount = man.Count
			n.cfg.Journal.Executed(man.Next, man.Frontier, man.Digests, man.AppHash, man.Count)
		}
		// The persisted snapshot keeps serving peers across the restart.
		n.snapMan, n.snapEnc, n.snapState = man, man.Encode(), state
		n.lastSnap = man.Next
		n.stats.SnapshotFrontier.Store(uint64(man.Next))
	}
	if n.machine != nil {
		// Balances resume from the snapshot when one exists (exact below
		// its frontier; the window up to the journal frontier is not
		// locally replayable — the journal holds digests, not batches).
		// The chain oracle then jumps to the journaled value, which is
		// state-independent by construction, so the cross-replica AppHash
		// check is exact regardless.
		if state != nil {
			if err := n.machine.Install(state); err != nil {
				n.machine = exec.New()
			}
		}
		n.machine.RestoreHash(rec.AppHash, rec.ChainCount)
	}
	if rec.Empty() {
		return
	}
	var ownCommitted types.Pos
	if int(n.cfg.Self) < len(rec.Frontier) {
		ownCommitted = rec.Frontier[n.cfg.Self]
	}
	n.lanes.Restore(rec.OwnProposals, ownCommitted, rec.LaneVotes)
	n.engine.Restore(rec.PrepVotes, rec.ConfirmAcks, rec.Timeouts)
	n.orderer.Restore(rec.NextExec, rec.Frontier, rec.FrontierDigests)
	if len(rec.Frontier) == n.cfg.Committee.Size() {
		// Vote frontiers adopt the committed chains (fork GC, §A.4), as
		// drainExecution would have done before the crash. No proposals
		// can come back: Restore already excluded own cars at or below
		// the journaled frontier, and the mempool is empty before Init.
		for _, l := range n.cfg.Committee.Nodes() {
			if pos := n.orderer.LastCommit(l); pos > 0 {
				n.lanes.OnCommitted(l, pos, n.orderer.FrontierDigest(l))
			}
		}
	}
	n.recovery = rec
}

// Stats returns a snapshot of node counters.
func (n *Node) Stats() Stats { return n.stats.snapshot() }

// CertCacheStats reports the whole-certificate verdict memo's hit/miss
// counters — the observability hook for the batch-verification fast
// path. Zero without VerifySigs, and with SequentialVerify (no memo).
func (n *Node) CertCacheStats() (hits, misses uint64) {
	if n.vcache == nil {
		return 0, 0
	}
	return n.vcache.CertStats()
}

// Lanes exposes lane state (tests and examples).
func (n *Node) Lanes() *lane.State { return n.lanes }

// LaneDepth returns the own lane's end-to-end backlog (batches waiting
// for a car plus cars proposed but not yet committed). A single atomic
// load, safe from any goroutine — admission control reads it per
// submission.
func (n *Node) LaneDepth() int { return n.lanes.Depth() }

// Orderer exposes ordering state (tests and examples).
func (n *Node) Orderer() *order.Orderer { return n.orderer }

// Engine exposes the consensus engine (tests).
func (n *Node) Engine() *consensus.Engine { return n.engine }

// Reputation returns a lane's current §B.1 standing (tests).
func (n *Node) Reputation(l types.NodeID) int { return n.reputation[l] }

// --- runtime.Protocol ---

// Init arms the recurring fetch-retry and car-retransmit timers,
// replays journaled decisions (crash recovery) and bootstraps consensus.
func (n *Node) Init(ctx runtime.Context) {
	ctx = n.enter(ctx)
	defer n.leave()
	if rec := n.recovery; rec != nil {
		n.recovery = nil
		// Re-deliver pre-crash commits in slot order: decided slots above
		// the executed frontier re-enter the orderer and execution resumes
		// once their data is (re-)fetched via the normal non-blocking sync.
		// The notices are already journaled — don't append them again.
		n.replaying = true
		for _, notice := range rec.Commits {
			n.handleCommitNotice(ctx, n.cfg.Self, notice)
		}
		n.replaying = false
	}
	ctx.SetTimer(n.cfg.FetchTick, runtime.TimerTag{Kind: tagFetchTick})
	ctx.SetTimer(carRetransmit, runtime.TimerTag{Kind: tagCarRetx})
	n.engine.Init()
}

// OnClientBatch receives a sealed batch from this replica's mempool and
// feeds it into the replica's own lane (§5.1 step 1). Sharded runtimes
// route batches to the own-lane shard instead (OnShardBatch).
func (n *Node) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	if n.sharded {
		// Unsharded runtime despite cfg.Shards > 1 (single-threaded here):
		// run the shard path inline so state ownership stays consistent.
		n.OnShardBatch(ctx, n.BatchShard(), b)
		n.FlushShard(ctx, n.BatchShard())
		return
	}
	ctx = n.enter(ctx)
	defer n.leave()
	if p := n.lanes.AddBatch(b); p != nil {
		n.stats.BatchesProposed.Add(1)
		ctx.Broadcast(p)
		n.engine.OnTipsAdvanced() // own leader tip advanced
	}
}

// OnMessage dispatches a peer (or internal shard-handoff) message on the
// control loop.
func (n *Node) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	if n.sharded {
		if s := n.ShardOf(from, m); s >= 0 {
			// Data-plane message on the control loop: the runtime does not
			// honor runtime.Sharder (custom runtimes only — the transport
			// loop routes these before delivery). Run the shard path
			// inline, flushing its notices immediately; single-threaded,
			// so shard-state ownership is vacuously respected.
			n.OnShardMessage(ctx, s, from, m)
			n.FlushShard(ctx, s)
			return
		}
	}
	ctx = n.enter(ctx)
	defer n.leave()
	switch msg := m.(type) {
	case *types.Proposal:
		n.handleProposal(ctx, from, msg, true)
	case *types.Vote:
		n.handleVote(ctx, msg)
	case *types.PoA:
		if err := n.lanes.OnPoA(msg); err == nil {
			n.engine.OnTipsAdvanced()
		}
	case *types.Prepare:
		n.stats.ProposalsReceived.Add(1)
		n.engine.OnPrepare(from, msg)
	case *types.PrepVote:
		n.engine.OnPrepVote(from, msg)
	case *types.Confirm:
		n.engine.OnConfirm(from, msg)
	case *types.ConfirmAck:
		n.engine.OnConfirmAck(from, msg)
	case *types.CommitNotice:
		n.handleCommitNotice(ctx, from, msg)
	case *types.Timeout:
		n.engine.OnTimeoutMsg(from, msg)
	case *types.SyncRequest:
		n.serveSync(ctx, msg)
	case *types.SyncReply:
		n.handleSyncReply(ctx, from, msg)
	case *types.CommitRequest:
		n.serveCommitRequest(ctx, msg)
	case *types.CommitReply:
		for i := range msg.Notices {
			n.handleCommitNotice(ctx, from, &msg.Notices[i])
		}
	case *types.SnapshotRequest:
		n.serveSnapshotRequest(ctx, msg)
	case *types.SnapshotManifest:
		n.handleSnapshotManifest(ctx, from, msg)
	case *types.ChunkRequest:
		n.serveChunkRequest(ctx, msg)
	case *types.ChunkReply:
		n.handleChunkReply(ctx, from, msg)
	case *laneNotice:
		n.onLaneNotice(ctx, msg)
	case *ownTipNotice:
		n.tips.ownTip, n.tips.ownCert = msg.tip, msg.cert
		n.engine.OnTipsAdvanced() // own leader tip advanced
	case *syncDone:
		n.onSyncDone(ctx, msg)
	}
}

// OnTimer dispatches node timers.
func (n *Node) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	ctx = n.enter(ctx)
	defer n.leave()
	switch tag.Kind {
	case tagConsensusView:
		n.engine.OnTimer(consensus.Timer{Kind: consensus.TimerView, Slot: types.Slot(tag.A), View: types.View(tag.B)})
	case tagConsensusFast:
		n.engine.OnTimer(consensus.Timer{Kind: consensus.TimerFast, Slot: types.Slot(tag.A), View: types.View(tag.B)})
	case tagConsensusCoverage:
		n.engine.OnTimer(consensus.Timer{Kind: consensus.TimerCoverage, Slot: types.Slot(tag.A)})
	case tagFetchTick:
		n.pumpTipFetches(ctx)
		for _, em := range n.fetcher.Tick(ctx.Now()) {
			n.stats.SyncRequestsSent.Add(1)
			ctx.Send(em.To, em.Msg)
		}
		// Re-drive stalled execution: abandoned fetches for data a
		// pending slot still needs are re-created here.
		if n.orderer.PendingSlot(n.orderer.NextExec()) {
			n.drainExecution(ctx)
		}
		n.retryMissingDecision(ctx)
		n.tickStateSync(ctx)
		ctx.SetTimer(n.cfg.FetchTick, runtime.TimerTag{Kind: tagFetchTick})
	case tagCarRetx:
		// An own car that survived a whole tick without certifying has
		// likely lost its broadcast or its votes: re-broadcast it. The
		// outstanding-car state is shard-owned under the parallel data
		// plane, so the tick is forwarded there.
		if n.sharded {
			ctx.Send(n.cfg.Self, &retxMsg{})
		} else if p := n.lanes.OldestOutstanding(); p != nil {
			if p.Position == n.lastRetxPos {
				ctx.Broadcast(p)
			}
			n.lastRetxPos = p.Position
		} else {
			n.lastRetxPos = 0
		}
		ctx.SetTimer(carRetransmit, runtime.TimerTag{Kind: tagCarRetx})
	}
}

// enter installs the context for the duration of one event handler.
// Under group commit the installed context is the gating wrapper, so
// every send the handler (or the consensus engine beneath it) performs
// is deferred until Flush has synced the journal records the handler
// appended.
func (n *Node) enter(ctx runtime.Context) runtime.Context {
	if n.cfg.GroupCommit {
		n.gctx.inner = ctx
		n.gctx.pending = &n.pending
		n.ctx = &n.gctx
	} else {
		n.ctx = ctx
	}
	return n.ctx
}

func (n *Node) leave() { n.ctx = nil }

// pendingSend is one gated outbound message awaiting the group-commit
// barrier.
type pendingSend struct {
	to        types.NodeID
	broadcast bool
	msg       types.Message
}

// gatedContext defers Send/Broadcast into a pending queue (the node's
// for the control loop, a shard's for shard workers); everything else
// passes through to the runtime.
type gatedContext struct {
	inner   runtime.Context
	pending *[]pendingSend
}

func (g *gatedContext) ID() types.NodeID   { return g.inner.ID() }
func (g *gatedContext) Now() time.Duration { return g.inner.Now() }
func (g *gatedContext) Rand() uint64       { return g.inner.Rand() }
func (g *gatedContext) SetTimer(d time.Duration, tag runtime.TimerTag) {
	g.inner.SetTimer(d, tag)
}
func (g *gatedContext) CancelTimer(tag runtime.TimerTag) { g.inner.CancelTimer(tag) }
func (g *gatedContext) Send(to types.NodeID, m types.Message) {
	*g.pending = append(*g.pending, pendingSend{to: to, msg: m})
}
func (g *gatedContext) Broadcast(m types.Message) {
	*g.pending = append(*g.pending, pendingSend{broadcast: true, msg: m})
}

var _ runtime.Flusher = (*Node)(nil)

// Flush implements runtime.Flusher: the group-commit barrier. The
// runtime calls it after each burst of events; one Journal.Sync makes
// every record the burst appended durable, and only then are the gated
// sends released (in original order) through the real context —
// write-before-externalize, amortized over the burst. Without
// cfg.GroupCommit the journal syncs but no sends were gated.
//
// A Sync failure is replica-fatal: the gated sends are DROPPED, never
// released — an un-journaled vote that externalizes could contradict
// this replica after a restart — and cfg.OnFatal fires once.
func (n *Node) Flush(ctx runtime.Context) {
	if err := n.cfg.Journal.Sync(); err != nil {
		n.fatal(err)
	}
	if n.halted.Load() {
		n.dropPending(&n.pending)
		return
	}
	if len(n.pending) == 0 {
		return
	}
	pend := n.pending
	n.pending = n.pending[:0]
	for i := range pend {
		if pend[i].broadcast {
			ctx.Broadcast(pend[i].msg)
		} else {
			ctx.Send(pend[i].to, pend[i].msg)
		}
		pend[i] = pendingSend{} // release the message reference
	}
}

// fatal records a journal-barrier failure: the node stops externalizing
// and reports once through cfg.OnFatal, asynchronously — the callback
// may stop the hosting replica, which joins the very loop this runs on.
func (n *Node) fatal(err error) {
	n.halted.Store(true)
	n.fatalOnce.Do(func() {
		if n.cfg.OnFatal != nil {
			go n.cfg.OnFatal(err)
		}
	})
}

// Halted reports whether the node halted on a journal failure.
func (n *Node) Halted() bool { return n.halted.Load() }

// dropPending discards gated sends without releasing them.
func (n *Node) dropPending(pending *[]pendingSend) {
	pend := *pending
	*pending = pend[:0]
	for i := range pend {
		pend[i] = pendingSend{}
	}
}

// --- data layer handling ---

// handleProposal processes a lane proposal (live broadcast or synced) on
// the classic single-threaded path (shardState.handleProposal is the
// data-plane counterpart).
func (n *Node) handleProposal(ctx runtime.Context, from types.NodeID, p *types.Proposal, live bool) {
	if p.Lane == n.cfg.Self {
		// Own-lane data arriving from outside: meaningless on the live
		// path (peers do not re-broadcast our cars), but sync deliveries
		// must be ingested store-only so execution of a committed own-lane
		// chain this replica no longer (amnesia) or never (a lost
		// self-fork) possessed can proceed — see lane.IngestOwn.
		if !live && n.lanes.IngestOwn(p) == nil {
			n.drainExecution(ctx)
		}
		return
	}
	votes, err := n.lanes.OnProposal(p)
	for _, v := range votes {
		n.stats.VotesSent.Add(1)
		ctx.Send(p.Lane, v)
	}
	if err == lane.ErrMissingParent && live {
		n.scheduleGapFetch(ctx, p.Lane)
	}
	if err == nil || err == lane.ErrMissingParent {
		// Data arrival can unblock pending consensus votes and execution,
		// and new certified tips (carried as ParentPoA) advance coverage.
		n.fetcher.Cancel(p.Lane, n.lanes.VotedPos(p.Lane))
		n.engine.OnTipsAdvanced()
		n.retryPendingVotes()
		n.drainExecution(ctx)
	}
}

func (n *Node) handleVote(ctx runtime.Context, v *types.Vote) {
	props, poa, err := n.lanes.OnVote(v)
	if err != nil {
		return
	}
	for _, p := range props {
		n.stats.BatchesProposed.Add(1)
		ctx.Broadcast(p)
	}
	if poa != nil {
		ctx.Broadcast(poa)
	}
	if len(props) > 0 || poa != nil {
		n.engine.OnTipsAdvanced()
	}
}

// scheduleGapFetch starts a sync for a detected lane gap, targeting the
// certifiers of the buffered proposal's parent (at least one is correct
// and, by FIFO voting, holds the whole history). At most one bulk range
// is in flight per lane (counting execution catch-up fetches): each
// partial fill otherwise spawns an overlapping fetch while the previous
// reply still streams, melting the ingest pipeline.
func (n *Node) scheduleGapFetch(ctx runtime.Context, l types.NodeID) {
	from, to, anchor, ok := n.lanes.BufferedGap(l)
	if !ok {
		return
	}
	n.scheduleGapFetchAt(ctx, l, from, to, anchor)
}

// scheduleGapFetchAt is scheduleGapFetch for an already-localized gap —
// the form the sharded path uses, because BufferedGap reads shard-owned
// state and the range therefore rides in the shard's notice.
func (n *Node) scheduleGapFetchAt(ctx runtime.Context, l types.NodeID, from, to types.Pos, anchor types.TipRef) {
	if n.fetcher.HasPending(l, fetch.PurposeGap) || n.fetcher.HasPending(l, fetch.PurposeExecute) {
		return
	}
	targets := []types.NodeID{l}
	if anchor.Cert != nil {
		targets = append(anchor.Cert.Signers(), l)
	}
	if em := n.fetcher.Start(ctx.Now(), l, from, to, anchor.Digest, targets, fetch.PurposeGap, 0, 0); em != nil {
		n.stats.SyncRequestsSent.Add(1)
		ctx.Send(em.To, em.Msg)
	}
}

// --- synchronization ---

func (n *Node) serveSync(ctx runtime.Context, req *types.SyncRequest) {
	if n.cfg.Reputation && req.From == req.To && req.Lane != n.cfg.Self {
		// A point request for another lane's tip means a replica could
		// not vote on an optimistic tip we (presumably, as leader)
		// proposed: downgrade the lane's standing (§B.1).
		n.reputation[req.Lane] -= repPenalty
		if n.reputation[req.Lane] < 0 {
			n.reputation[req.Lane] = 0
		}
	}
	for _, rep := range fetch.Serve(n.lanes.Store(), req) {
		n.stats.SyncRepliesServed.Add(1)
		ctx.Send(req.Requester, rep)
	}
}

func (n *Node) handleSyncReply(ctx runtime.Context, from types.NodeID, rep *types.SyncReply) {
	res, err := n.fetcher.OnReply(ctx.Now(), from, rep)
	if err == fetch.ErrUnsolicited {
		// Late reply to an abandoned request: the data is still valuable
		// (ingestion is idempotent and execution may be waiting on it).
		for _, p := range rep.Proposals {
			n.handleProposal(ctx, from, p, false)
		}
		n.drainExecution(ctx)
		return
	}
	if err != nil || res == nil {
		return
	}
	if res.Remainder != nil {
		// The lower sub-range usually already arrived as earlier chunks
		// of the same FIFO stream; only chase it if truly absent.
		rm := res.Remainder.Msg
		if n.lanes.Store().Has(rm.Lane, rm.To, rm.TipDigest) {
			n.fetcher.Cancel(rm.Lane, rm.To)
		} else {
			n.stats.SyncRequestsSent.Add(1)
			ctx.Send(res.Remainder.To, res.Remainder.Msg)
		}
	}
	for _, p := range res.Proposals {
		// Feed synced proposals through the normal lane path: the store
		// absorbs them and FIFO voting resumes where possible.
		n.handleProposal(ctx, from, p, false)
	}
	if res.Request.Purpose == fetch.PurposeTipVote {
		n.engine.TipDataArrived(res.Request.Slot, res.Request.View)
	}
	n.drainExecution(ctx)
}

func (n *Node) retryPendingVotes() {
	// Consensus votes blocked on tip data retry whenever data arrives;
	// the engine ignores slots without pending votes.
	n.engine.RetryPendingVotes()
}

// --- commit & execution ---

func (n *Node) handleCommitNotice(ctx runtime.Context, from types.NodeID, m *types.CommitNotice) {
	already := n.engine.Decided(m.QC.Slot)
	n.engine.OnCommitNotice(from, m)
	if !already && n.engine.Decided(m.QC.Slot) {
		// Newly learned commit: if slots below are missing, catch up from
		// the sender (it must have decided them or hold their notices).
		if next := n.orderer.NextExec(); m.QC.Slot > next {
			missing := false
			for s := next; s < m.QC.Slot; s++ {
				if !n.orderer.PendingSlot(s) && !n.engine.Decided(s) {
					missing = true
					break
				}
			}
			if missing && from != n.cfg.Self {
				ctx.Send(from, &types.CommitRequest{From: next, To: m.QC.Slot - 1, Requester: n.cfg.Self})
			}
		}
	}
	n.maybeStateSync(ctx, from, m.QC.Slot)
}

func (n *Node) serveCommitRequest(ctx runtime.Context, req *types.CommitRequest) {
	if req.To < req.From || req.To-req.From > 4096 {
		return
	}
	var rep types.CommitReply
	for s := req.From; s <= req.To; s++ {
		if notice, ok := n.recentNotices[s]; ok {
			rep.Notices = append(rep.Notices, *notice)
		}
	}
	if len(rep.Notices) > 0 {
		ctx.Send(req.Requester, &rep)
	}
}

// retryMissingDecision re-requests a lost commit certificate. Slots
// decide out of order within the parallel window, so the execution
// frontier being undecided while a later slot is decided normally
// resolves in milliseconds; handleCommitNotice additionally issues a
// one-shot catch-up request when it learns of a commit above a gap. But
// if the frontier slot's CommitNotice broadcast AND that catch-up
// exchange are all lost (inbox overflow, lossy links, a Byzantine
// sender), nothing retried and execution wedged for good. Re-request
// from a rotating peer once the gap has survived two consecutive fetch
// ticks — quiet in healthy runs, where the gap clears within one.
func (n *Node) retryMissingDecision(ctx runtime.Context) {
	next := n.orderer.NextExec()
	if n.orderer.PendingSlot(next) || n.engine.Decided(next) {
		n.stuckSlot = 0
		return
	}
	// MaxDecided, not a window scan over Decided: several consecutive
	// notices can be lost at once, leaving the nearest decided slot
	// arbitrarily far above the frontier.
	hi := n.engine.MaxDecided()
	if hi <= next {
		n.stuckSlot = 0
		return
	}
	if hi > next+256 {
		hi = next + 256 // bounded request; repeat ticks walk the rest
	}
	if n.stuckSlot != next {
		n.stuckSlot = next // first sighting: give the normal paths a tick
		return
	}
	// Rotate the target so a single unresponsive (or hostile) peer
	// cannot stall the retry forever.
	size := uint64(n.cfg.Committee.Size())
	peer := types.NodeID(ctx.Rand() % size)
	if peer == n.cfg.Self {
		peer = types.NodeID((uint64(peer) + 1) % size)
	}
	ctx.Send(peer, &types.CommitRequest{From: next, To: hi, Requester: n.cfg.Self})
}

// drainExecution advances the total order as far as data allows, emits
// committed entries to the sink, and fetches whatever is missing —
// coalesced across every decided slot, so an arbitrarily long backlog
// costs one sync round trip per lane (timely sync, §5.2.2).
func (n *Node) drainExecution(ctx runtime.Context) {
	entries, missing, executed := n.orderer.TryExecute()
	if len(missing) > 0 {
		// Coalesce across every decided slot (one range per lane), but
		// keep the precise ranges for lanes the coalescing dropped: the
		// per-lane "best tip" anchor assumes a lane's pending tips lie on
		// one chain, and an equivocating lane violates that — the first
		// blocked slot can need a fork sibling that no later (locally
		// complete) chain covers, which would otherwise never be fetched
		// and wedge execution forever.
		coalesced := n.orderer.CatchupRanges()
		covered := make(map[types.NodeID]bool, len(coalesced))
		for _, m := range coalesced {
			covered[m.Lane] = true
		}
		for _, m := range missing {
			if !covered[m.Lane] {
				coalesced = append(coalesced, m)
			}
		}
		missing = coalesced
	}
	for _, e := range entries {
		n.stats.EntriesOrdered.Add(1)
		n.stats.TxOrdered.Add(uint64(e.Batch.Count))
		var appHash types.Digest
		if n.machine != nil {
			digest := e.Digest
			if n.tamper {
				digest[0] ^= 0x01 // test hook: a Byzantine executor
			}
			appHash = n.machine.Apply(e.Slot, e.Lane, e.Position, digest, e.Batch)
		}
		n.cfg.Sink.OnCommit(n.cfg.Self, ctx.Now(), runtime.Committed{
			Lane: e.Lane, Position: e.Position, Slot: e.Slot, Batch: e.Batch, AppHash: appHash,
		})
	}
	if len(executed) > 0 {
		n.stats.SlotsDecided.Add(uint64(len(executed)))
		if n.cfg.Reputation {
			for _, e := range entries {
				n.repCommits[e.Lane]++
				if n.repCommits[e.Lane] >= repRegainEvery {
					n.repCommits[e.Lane] = 0
					if n.reputation[e.Lane] < repMax {
						n.reputation[e.Lane]++
					}
				}
			}
		}
		// Inform the lane layer of new committed frontiers (vote-frontier
		// adoption + fork GC, §A.4). Under the sharded data plane the
		// peer-lane views are shard-owned, so the frontier travels there
		// as a message; applying it asynchronously is safe — it only
		// advances GC and vote-frontier adoption, both monotonic.
		for _, l := range n.cfg.Committee.Nodes() {
			if pos := n.orderer.LastCommit(l); pos > 0 {
				if n.sharded {
					ctx.Send(n.cfg.Self, &frontierMsg{lane: l, pos: pos, digest: n.orderer.FrontierDigest(l)})
				} else {
					// Own-lane commits can retire wedged outstanding cars
					// (commit overtaking certification after a restart) and
					// unblock fresh proposals — broadcast them like any
					// other production.
					for _, p := range n.lanes.OnCommitted(l, pos, n.orderer.FrontierDigest(l)) {
						n.stats.BatchesProposed.Add(1)
						ctx.Broadcast(p)
					}
				}
			}
		}
		// Persist the execution frontier: a restarted replica resumes here
		// instead of re-emitting the whole log.
		var appHash types.Digest
		var chainCount uint64
		if n.machine != nil {
			appHash, chainCount = n.machine.AppHash(), n.machine.Count()
		}
		n.cfg.Journal.Executed(n.orderer.NextExec(), n.orderer.Frontier(), n.orderer.FrontierDigests(), appHash, chainCount)
		n.maybeSnapshot()
		n.engine.OnTipsAdvanced()
	}
	for _, m := range missing {
		if n.fetcher.HasPending(m.Lane, fetch.PurposeExecute) || n.fetcher.HasPending(m.Lane, fetch.PurposeGap) {
			continue // one bulk range per lane at a time
		}
		targets := []types.NodeID{m.Lane}
		if m.Tip.Cert != nil {
			targets = append(m.Tip.Cert.Signers(), m.Lane)
		} else if qc := n.engine.CommitQCFor(m.Slot); qc != nil {
			for _, sh := range qc.Shares {
				targets = append(targets, sh.Signer)
			}
		}
		if em := n.fetcher.Start(ctx.Now(), m.Lane, m.From, m.To, m.TipDigest, targets, fetch.PurposeExecute, m.Slot, 0); em != nil {
			n.stats.SyncRequestsSent.Add(1)
			ctx.Send(em.To, em.Msg)
		}
	}
}

// --- consensus Env and Provider adapters ---

// consensusEnv adapts Node to consensus.Env.
type consensusEnv Node

func (e *consensusEnv) node() *Node { return (*Node)(e) }

func (e *consensusEnv) Send(to types.NodeID, m types.Message) {
	nd := e.node()
	if _, isTimeout := m.(*types.Timeout); isTimeout {
		nd.stats.TimeoutsSent.Add(1)
	}
	nd.ctx.Send(to, m)
}

func (e *consensusEnv) Broadcast(m types.Message) {
	nd := e.node()
	if _, isTimeout := m.(*types.Timeout); isTimeout {
		nd.stats.TimeoutsSent.Add(1)
	}
	nd.ctx.Broadcast(m)
}

func (e *consensusEnv) SetTimer(t consensus.Timer) {
	nd := e.node()
	var kind uint8
	switch t.Kind {
	case consensus.TimerView:
		kind = tagConsensusView
	case consensus.TimerFast:
		kind = tagConsensusFast
	case consensus.TimerCoverage:
		kind = tagConsensusCoverage
	}
	nd.ctx.SetTimer(t.Delay, runtime.TimerTag{Kind: kind, A: uint64(t.Slot), B: uint64(t.View)})
}

func (e *consensusEnv) Now() time.Duration { return e.node().ctx.Now() }

func (e *consensusEnv) Decide(s types.Slot, p *types.ConsensusProposal, qc *types.CommitQC) {
	nd := e.node()
	notice := &types.CommitNotice{QC: *qc, Proposal: *p}
	nd.recentNotices[s] = notice
	if s > nd.maxNotice {
		nd.maxNotice = s
	}
	// Bounded retention window for straggler catch-up.
	const retain = 2048
	if nd.maxNotice > retain {
		delete(nd.recentNotices, nd.maxNotice-retain)
	}
	_ = nd.orderer.AddDecision(s, p)
	nd.drainExecution(nd.ctx)
}

func (e *consensusEnv) FetchTipData(leader types.NodeID, tips []types.TipRef, s types.Slot, v types.View) {
	nd := e.node()
	for _, t := range tips {
		dup := false
		for _, q := range nd.tipFetchQueue {
			if q.slot == s && q.view == v && q.tip.Lane == t.Lane && q.tip.Position == t.Position {
				dup = true
				break
			}
		}
		if !dup {
			nd.tipFetchQueue = append(nd.tipFetchQueue, deferredTipFetch{
				leader: leader, tip: t, slot: s, view: v,
				due: nd.ctx.Now() + tipFetchDefer,
			})
		}
	}
}

// pumpTipFetches issues deferred tip fetches whose grace period expired
// and whose vote is still blocked (live data usually arrives first).
func (n *Node) pumpTipFetches(ctx runtime.Context) {
	kept := n.tipFetchQueue[:0]
	for _, q := range n.tipFetchQueue {
		if !n.engine.HasPendingVote(q.slot, q.view) || n.lanes.HasProposal(q.tip) {
			continue // moot: decided, view moved on, or data arrived
		}
		if ctx.Now() < q.due {
			kept = append(kept, q)
			continue
		}
		if n.fetcher.HasPending(q.tip.Lane, fetch.PurposeGap) || n.fetcher.HasPending(q.tip.Lane, fetch.PurposeExecute) {
			kept = append(kept, q) // a range fetch already covers this lane
			continue
		}
		targets := []types.NodeID{q.leader, q.tip.Lane}
		if em := n.fetcher.Start(ctx.Now(), q.tip.Lane, q.tip.Position, q.tip.Position, q.tip.Digest, targets, fetch.PurposeTipVote, q.slot, q.view); em != nil {
			n.stats.SyncRequestsSent.Add(1)
			ctx.Send(em.To, em.Msg)
		}
	}
	n.tipFetchQueue = kept
}

// cutProvider adapts Node to consensus.Provider.
type cutProvider Node

func (c *cutProvider) node() *Node { return (*Node)(c) }

func (c *cutProvider) AssembleCut(optimistic bool) types.Cut {
	nd := c.node()
	if nd.sharded {
		// Cut assembly must not read shard-owned lane state: the control
		// plane's notice-fed tip snapshot stands in for it.
		return nd.tips.assemble(nd.cfg.Self, c.optimisticFor(optimistic))
	}
	if !optimistic {
		return nd.lanes.AssembleCut(false)
	}
	if !nd.cfg.Reputation {
		return nd.lanes.AssembleCut(true)
	}
	return nd.lanes.AssembleCutFunc(c.optimisticFor(true))
}

// optimisticFor returns the per-lane optimism predicate (§B.1 reputation
// downgrades individual lanes to certified tips).
func (c *cutProvider) optimisticFor(optimistic bool) func(types.NodeID) bool {
	nd := c.node()
	if !optimistic {
		return func(types.NodeID) bool { return false }
	}
	if !nd.cfg.Reputation {
		return func(types.NodeID) bool { return true }
	}
	return func(l types.NodeID) bool { return nd.reputation[l] > repOptimisticMin }
}

func (c *cutProvider) HasTipData(t types.TipRef) bool {
	return c.node().lanes.HasProposal(t)
}

func (c *cutProvider) ValidateCut(cut types.Cut, leader types.NodeID) error {
	nd := c.node()
	if !nd.cfg.VerifySigs {
		return nil
	}
	for _, t := range cut.Tips {
		if t.Cert != nil {
			if err := crypto.VerifyPoA(nd.verifier, nd.cfg.Committee, t.Cert); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *cutProvider) NewTipCount(base []types.Pos) int {
	nd := c.node()
	var cut types.Cut
	if nd.sharded {
		cut = nd.tips.assemble(nd.cfg.Self, c.optimisticFor(nd.cfg.OptimisticTips))
	} else {
		cut = nd.lanes.AssembleCut(nd.cfg.OptimisticTips)
	}
	return cut.NewTipsVersus(base)
}

func (c *cutProvider) NextExec() types.Slot { return c.node().orderer.NextExec() }

// Fetcher exposes the sync manager (tests).
func (n *Node) Fetcher() *fetch.Manager { return n.fetcher }

// Machine exposes the execution machine (tests; nil without Execution).
func (n *Node) Machine() *exec.Machine { return n.machine }

// SnapshotFrontier returns the slot of the latest local snapshot (0 when
// none has been taken or installed).
func (n *Node) SnapshotFrontier() types.Slot { return n.lastSnap }

// TamperExecution makes every subsequently executed entry fold a
// corrupted digest into the AppHash chain — a Byzantine (or buggy)
// executor. Test hook for the divergence oracle; call before Init.
func (n *Node) TamperExecution() { n.tamper = true }
