package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// muteLane wraps a node and suppresses its own lane proposal broadcasts
// toward everyone except the given receiver — a Byzantine proposer that
// forwards its batch "only to a correct leader, and no other replicas"
// (§B.1), forcing critical-path tip synchronization.
type muteLane struct {
	*core.Node
	self types.NodeID
	only types.NodeID
}

type filteredCtx struct {
	runtime.Context
	self types.NodeID
	only types.NodeID
}

func (f filteredCtx) Broadcast(m types.Message) {
	if p, ok := m.(*types.Proposal); ok && p.Lane == f.self {
		// Deliver the lane proposal only to the chosen replica.
		f.Context.Send(f.only, m)
		return
	}
	f.Context.Broadcast(m)
}

func (b *muteLane) OnClientBatch(ctx runtime.Context, batch *types.Batch) {
	b.Node.OnClientBatch(filteredCtx{Context: ctx, self: b.self, only: b.only}, batch)
}

func (b *muteLane) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	b.Node.OnTimer(filteredCtx{Context: ctx, self: b.self, only: b.only}, tag)
}

// TestReputationDowngradesSyncHeavyLane (§B.1): a lane whose optimistic
// tips repeatedly force critical-path syncs loses standing at the serving
// replicas, whose cuts fall back to certified tips for it — while honest
// lanes retain full reputation. The system keeps committing throughout.
func TestReputationDowngradesSyncHeavyLane(t *testing.T) {
	const n = 4
	committee := types.NewCommittee(n)
	suite := crypto.NewNopSuite(n)
	eng := sim.NewEngine(sim.Config{
		Net:  sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Seed: 33,
	})
	var nodes []*core.Node
	ids := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = types.NodeID(i)
		nd := core.NewNode(core.Config{
			Committee: committee, Self: types.NodeID(i), Suite: suite,
			FastPath: true, OptimisticTips: true, Reputation: true,
		})
		nodes = append(nodes, nd)
		if i == 3 {
			// r3's lane reaches only r0 directly; everyone else must sync.
			eng.AddNode(&muteLane{Node: nd, self: 3, only: 0})
		} else {
			eng.AddNode(nd)
		}
	}
	workload.Install(eng, ids, workload.Config{TotalRate: 20000, Start: 0, End: 8 * time.Second})
	eng.Run(12 * time.Second)

	// The starved replicas served/issued tip syncs for lane 3; reputation
	// dropped at the replicas that had to serve them (r0 receives r3's
	// proposals and serves the others' fetches).
	if rep := nodes[0].Reputation(3); rep > 4 {
		t.Fatalf("serving replica still trusts lane 3: reputation %d", rep)
	}
	for l := types.NodeID(0); l < 3; l++ {
		if rep := nodes[0].Reputation(l); rep <= 4 {
			t.Fatalf("honest lane %s lost reputation: %d", l, rep)
		}
	}
	// Consensus kept committing (honest lanes fully, lane 3 through
	// certified tips once downgraded).
	s := nodes[0].Stats()
	if s.TxOrdered < 100_000 {
		t.Fatalf("ordered only %d txs under a sync-heavy lane", s.TxOrdered)
	}
	t.Logf("rep(lane3)@r0=%d ordered=%d", nodes[0].Reputation(3), s.TxOrdered)
}
