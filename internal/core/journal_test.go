package core_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// interceptor wraps a protocol and records every message received from
// one watched peer, across the watched peer's incarnations — the outside
// world's complete view of what the peer externalized.
type interceptor struct {
	inner runtime.Protocol
	watch types.NodeID
	seen  *[]types.Message
}

func (w *interceptor) Init(ctx runtime.Context) { w.inner.Init(ctx) }
func (w *interceptor) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	if from == w.watch {
		*w.seen = append(*w.seen, m)
	}
	w.inner.OnMessage(ctx, from, m)
}
func (w *interceptor) OnTimer(ctx runtime.Context, tag runtime.TimerTag) { w.inner.OnTimer(ctx, tag) }
func (w *interceptor) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	w.inner.OnClientBatch(ctx, b)
}

// restartCluster is a sim deployment with per-node journals, a rebuild
// hook for Restart faults, and interceptors watching one replica.
type restartCluster struct {
	engine   *sim.Engine
	journals []core.Journal
	nodes    []*core.Node
	logs     *logCollector
	recorder *metrics.Recorder
	ids      []types.NodeID
	seen     []types.Message // messages the watched replica externalized
}

func newRestartCluster(n int, watch types.NodeID, faults *sim.FaultSchedule, seed uint64) *restartCluster {
	committee := types.NewCommittee(n)
	suite := crypto.NewNopSuite(n)
	rec := metrics.NewRecorder(5 * time.Minute)
	lc := newLogCollector(n, rec.Sink())
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Faults: faults,
		Seed:   seed,
	})
	c := &restartCluster{engine: eng, logs: lc, recorder: rec}
	c.journals = make([]core.Journal, n)
	for i := range c.journals {
		c.journals[i] = core.NewMemJournal()
	}
	c.nodes = make([]*core.Node, n)
	build := func(id types.NodeID) *core.Node {
		nd := core.NewNode(core.Config{
			Committee:      committee,
			Self:           id,
			Suite:          suite,
			FastPath:       true,
			OptimisticTips: true,
			Journal:        c.journals[id],
			Sink:           lc,
		})
		c.nodes[id] = nd
		return nd
	}
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		c.ids = append(c.ids, id)
		nd := build(id)
		if id != watch {
			eng.AddNode(&interceptor{inner: nd, watch: watch, seen: &c.seen})
		} else {
			eng.AddNode(nd)
		}
	}
	eng.SetRebuild(func(id types.NodeID, amnesia bool) runtime.Protocol {
		if amnesia {
			c.journals[id] = core.NewMemJournal()
		}
		nd := build(id)
		if id != watch {
			return &interceptor{inner: nd, watch: watch, seen: &c.seen}
		}
		return nd
	})
	return c
}

// checkNoContradictions asserts the watched replica never externalized
// two conflicting votes: lane FIFO votes must agree per (lane, position),
// consensus PrepVotes and ConfirmAcks per (slot, view) — across both
// incarnations.
func checkNoContradictions(t *testing.T, seen []types.Message) (laneVotes, prepVotes int) {
	t.Helper()
	lv := make(map[[2]uint64]types.Digest)
	pv := make(map[[2]uint64]types.Digest)
	ack := make(map[[2]uint64]types.Digest)
	for _, m := range seen {
		switch v := m.(type) {
		case *types.Vote:
			k := [2]uint64{uint64(v.Lane), uint64(v.Position)}
			if d, ok := lv[k]; ok && d != v.Digest {
				t.Fatalf("lane vote contradiction at lane %d pos %d: %x vs %x", v.Lane, v.Position, d[:4], v.Digest[:4])
			}
			lv[k] = v.Digest
			laneVotes++
		case *types.PrepVote:
			k := [2]uint64{uint64(v.Slot), uint64(v.View)}
			if d, ok := pv[k]; ok && d != v.Digest {
				t.Fatalf("prep vote contradiction at slot %d view %d: %x vs %x", v.Slot, v.View, d[:4], v.Digest[:4])
			}
			pv[k] = v.Digest
			prepVotes++
		case *types.ConfirmAck:
			k := [2]uint64{uint64(v.Slot), uint64(v.View)}
			if d, ok := ack[k]; ok && d != v.Digest {
				t.Fatalf("confirm ack contradiction at slot %d view %d", v.Slot, v.View)
			}
			ack[k] = v.Digest
		}
	}
	return laneVotes, prepVotes
}

// TestRestartNoVoteContradiction crashes a replica mid-run, restarts it
// from its journal, and asserts that nothing it externalized after the
// restart contradicts what it externalized before: same digest for every
// re-emitted lane vote, no conflicting PrepVote or ConfirmAck in any
// (slot, view), identically ordered commit logs, and no re-emitted
// (duplicate) committed batches from the restarted replica.
func TestRestartNoVoteContradiction(t *testing.T) {
	const crashed = types.NodeID(1)
	faults := (&sim.FaultSchedule{}).
		AddDown(crashed, 5*time.Second, 6*time.Second).
		Restart(crashed, 6*time.Second, false)
	c := newRestartCluster(4, crashed, faults, 42)
	workload.Install(c.engine, c.ids, workload.Config{TotalRate: 20000, Start: 0, End: 12 * time.Second})
	c.engine.Run(16 * time.Second)

	laneVotes, prepVotes := checkNoContradictions(t, c.seen)
	if laneVotes < 100 || prepVotes < 10 {
		t.Fatalf("watched replica externalized implausibly little: %d lane votes, %d prep votes", laneVotes, prepVotes)
	}
	checkPrefixAgreement(t, c.logs.logs)

	// The restarted replica resumes from its committed frontier: its own
	// commit log contains no duplicate (lane, position) entries.
	dups := make(map[logEntry]bool)
	for _, e := range c.logs.logs[crashed] {
		if dups[e] {
			t.Fatalf("restarted replica re-emitted committed batch %+v", e)
		}
		dups[e] = true
	}
	// Liveness: the blip must not dent total commitment (20k tx/s * 12s).
	if total := c.recorder.Total(); total < 235_000 {
		t.Fatalf("committed only %d of ~240000 txs across the restart", total)
	}
	// The restarted replica itself must resume committing (catch up past
	// its crash point via sync).
	if got := len(c.logs.logs[crashed]); got < len(c.logs.logs[0])*8/10 {
		t.Fatalf("restarted replica committed %d entries, peers %d: did not catch up", got, len(c.logs.logs[0]))
	}
	t.Logf("laneVotes=%d prepVotes=%d total=%d crashedLog=%d peerLog=%d",
		laneVotes, prepVotes, c.recorder.Total(), len(c.logs.logs[crashed]), len(c.logs.logs[0]))
}

// TestAmnesiaRestartPreservesClusterSafety restarts one replica (= f for
// n=4) with its journal discarded. The amnesiac re-executes the total
// order from genesis (like a fresh replica joining: it lost its frontier,
// so its sink re-delivers) and may act inconsistently with its pre-crash
// self — that is exactly the fault budget — but the cluster as a whole
// must preserve safety (every emitted log is consistent with one
// canonical order) and liveness (commits keep flowing after the restart).
func TestAmnesiaRestartPreservesClusterSafety(t *testing.T) {
	const crashed = types.NodeID(2)
	faults := (&sim.FaultSchedule{}).
		AddDown(crashed, 5*time.Second, 6*time.Second).
		Restart(crashed, 6*time.Second, true)
	c := newRestartCluster(4, crashed, faults, 7)
	// Mark where the amnesiac's pre-crash commit stream ends (this At is
	// scheduled before the fault's restart event, so it runs first).
	preCrash := -1
	c.engine.At(6*time.Second, func() { preCrash = len(c.logs.logs[crashed]) })
	workload.Install(c.engine, c.ids, workload.Config{TotalRate: 10000, Start: 0, End: 12 * time.Second})
	c.engine.Run(20 * time.Second)

	// Healthy replicas agree pairwise; each of the amnesiac's two
	// incarnations independently emits a prefix of the same canonical
	// order (the second one restarting from genesis).
	healthy := [][]logEntry{c.logs.logs[0], c.logs.logs[1], c.logs.logs[3]}
	checkPrefixAgreement(t, healthy)
	if preCrash < 0 {
		t.Fatal("restart marker never ran")
	}
	canonical := c.logs.logs[0]
	for name, log := range map[string][]logEntry{
		"pre-crash": c.logs.logs[crashed][:preCrash],
		"replay":    c.logs.logs[crashed][preCrash:],
	} {
		if len(log) > len(canonical) {
			t.Fatalf("%s log longer than canonical", name)
		}
		for k := range log {
			if log[k] != canonical[k] {
				t.Fatalf("%s log diverges at %d: %+v vs %+v", name, k, log[k], canonical[k])
			}
		}
	}

	// Commits must continue well past the restart: the healthy replicas'
	// lanes keep the cluster live (coverage is n-f).
	series := c.recorder.CommitSeries()
	post := uint64(0)
	for s := 7; s < len(series); s++ {
		post += series[s]
	}
	if post < 30_000 {
		t.Fatalf("only %d txs committed after the amnesia restart", post)
	}
	t.Logf("total=%d postRestart=%d", c.recorder.Total(), post)
}

// TestWALJournalRecoversAcrossReopen round-trips every record kind
// through the disk-backed journal, reopening the store in between — the
// exact path a restarted autobahn-node process takes.
func TestWALJournalRecoversAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.wal")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)

	sig := func(b byte) []byte { s := make([]byte, 64); s[0] = b; return s }
	prop := &types.Proposal{
		Lane: 1, Position: 3, Parent: types.Digest{9},
		Batch: types.NewBatch(1, 7, []types.Transaction{[]byte("tx-a"), []byte("tx-b")}, time.Millisecond),
		Sig:   sig(1),
	}
	j.OwnProposal(prop)
	j.LaneVote(&types.Vote{Lane: 2, Position: 5, Digest: types.Digest{5}, Voter: 1, Sig: sig(2)})
	j.LaneVote(&types.Vote{Lane: 2, Position: 6, Digest: types.Digest{6}, Voter: 1, Sig: sig(3)})
	j.PrepVote(&types.PrepVote{Slot: 4, View: 1, Digest: types.Digest{4}, Voter: 1, Strong: true, Sig: sig(4)})
	j.ConfirmAck(&types.ConfirmAck{Slot: 4, View: 1, Digest: types.Digest{4}, Voter: 1, Sig: sig(5)})
	j.Timeout(&types.Timeout{Slot: 6, View: 0, Voter: 1, Sig: sig(6)})
	notice := &types.CommitNotice{
		QC:       types.CommitQC{Slot: 2, View: 0, Digest: types.Digest{2}, Shares: []types.SigShare{{Signer: 0, Sig: sig(7)}}},
		Proposal: types.ConsensusProposal{Slot: 2, View: 0, Cut: types.NewEmptyCut(4)},
	}
	j.Commit(notice)
	j.Executed(3, []types.Pos{1, 2, 0, 4}, make([]types.Digest, 4), types.Digest{0xaa}, 17)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewWALJournal(st2).Recover()
	if len(rec.OwnProposals) != 1 || rec.OwnProposals[0].Position != 3 || len(rec.OwnProposals[0].Batch.Txs) != 2 {
		t.Fatalf("own proposals: %+v", rec.OwnProposals)
	}
	if d := rec.LaneVotes[2][6]; d != (types.Digest{6}) {
		t.Fatalf("lane votes: %+v", rec.LaneVotes)
	}
	if len(rec.PrepVotes) != 1 || rec.PrepVotes[0].Slot != 4 || !rec.PrepVotes[0].Strong {
		t.Fatalf("prep votes: %+v", rec.PrepVotes)
	}
	if len(rec.ConfirmAcks) != 1 || rec.ConfirmAcks[0].View != 1 {
		t.Fatalf("acks: %+v", rec.ConfirmAcks)
	}
	if len(rec.Timeouts) != 1 || rec.Timeouts[0].Slot != 6 {
		t.Fatalf("timeouts: %+v", rec.Timeouts)
	}
	if len(rec.Commits) != 1 || rec.Commits[0].QC.Slot != 2 {
		t.Fatalf("commits: %+v", rec.Commits)
	}
	if rec.NextExec != 3 || len(rec.Frontier) != 4 || rec.Frontier[3] != 4 {
		t.Fatalf("exec frontier: next=%d %v", rec.NextExec, rec.Frontier)
	}
	if rec.AppHash != (types.Digest{0xaa}) || rec.ChainCount != 17 {
		t.Fatalf("chain oracle: hash=%x count=%d", rec.AppHash[:4], rec.ChainCount)
	}
	if rec.Empty() {
		t.Fatal("snapshot reported empty")
	}
}

// TestMemJournalOverwriteSemantics: re-recording the same key keeps the
// latest value, and recovery sorts deterministically.
func TestMemJournalOverwriteSemantics(t *testing.T) {
	j := core.NewMemJournal()
	for i := 5; i >= 1; i-- {
		j.Commit(&types.CommitNotice{
			QC:       types.CommitQC{Slot: types.Slot(i), Digest: types.Digest{byte(i)}},
			Proposal: types.ConsensusProposal{Slot: types.Slot(i), Cut: types.NewEmptyCut(4)},
		})
	}
	j.LaneVote(&types.Vote{Lane: 1, Position: 2, Digest: types.Digest{1}, Voter: 0, Sig: []byte{1}})
	j.LaneVote(&types.Vote{Lane: 1, Position: 2, Digest: types.Digest{1}, Voter: 0, Sig: []byte{1}})
	rec := j.Recover()
	if len(rec.Commits) != 5 {
		t.Fatalf("commits: %d", len(rec.Commits))
	}
	for i, n := range rec.Commits {
		if n.QC.Slot != types.Slot(i+1) {
			t.Fatalf("commits unsorted: %d at index %d", n.QC.Slot, i)
		}
	}
	if len(rec.LaneVotes[1]) != 1 {
		t.Fatalf("duplicate lane vote records: %+v", rec.LaneVotes)
	}
}

// countingJournal counts Commit records reaching the backing journal.
type countingJournal struct {
	core.Journal
	commits int
}

func (c *countingJournal) Commit(n *types.CommitNotice) { c.commits++; c.Journal.Commit(n) }

// nopCtx satisfies runtime.Context for driving Init outside a runtime.
type nopCtx struct{}

func (nopCtx) ID() types.NodeID                         { return 1 }
func (nopCtx) Now() time.Duration                       { return 0 }
func (nopCtx) Send(types.NodeID, types.Message)         {}
func (nopCtx) Broadcast(types.Message)                  {}
func (nopCtx) SetTimer(time.Duration, runtime.TimerTag) {}
func (nopCtx) CancelTimer(runtime.TimerTag)             {}
func (nopCtx) Rand() uint64                             { return 0 }

// TestInitReplayDoesNotRejournalCommits: recovery re-delivers journaled
// notices through the normal commit path, but must not append them to
// the journal again — otherwise every restart rewrites the whole commit
// history into the append-only WAL.
func TestInitReplayDoesNotRejournalCommits(t *testing.T) {
	c := newRestartCluster(4, 0, &sim.FaultSchedule{}, 11)
	workload.Install(c.engine, c.ids, workload.Config{TotalRate: 5000, Start: 0, End: 2 * time.Second})
	c.engine.Run(4 * time.Second)
	recovered := len(c.journals[1].Recover().Commits)
	if recovered == 0 {
		t.Fatal("journal captured no commits")
	}
	cj := &countingJournal{Journal: c.journals[1]}
	nd := core.NewNode(core.Config{
		Committee:      types.NewCommittee(4),
		Self:           1,
		Suite:          crypto.NewNopSuite(4),
		FastPath:       true,
		OptimisticTips: true,
		Journal:        cj,
	})
	nd.Init(nopCtx{})
	if cj.commits != 0 {
		t.Fatalf("Init replay re-journaled %d of %d recovered commits", cj.commits, recovered)
	}
	if got := nd.Orderer().NextExec(); got < 2 {
		t.Fatalf("recovered node did not restore its frontier: nextExec=%d", got)
	}
}

// TestNopJournalRecoversEmpty pins the default: no journal, amnesia.
func TestNopJournalRecoversEmpty(t *testing.T) {
	if rec := (core.NopJournal{}).Recover(); !rec.Empty() {
		t.Fatalf("nop journal recovered state: %+v", rec)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
