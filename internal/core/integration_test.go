package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// logEntry identifies one committed batch for cross-replica comparison.
type logEntry struct {
	Lane types.NodeID
	Pos  types.Pos
	Dig  types.Digest
}

// logCollector records each replica's committed sequence.
type logCollector struct {
	logs  [][]logEntry
	inner runtime.CommitSink
}

func newLogCollector(n int, inner runtime.CommitSink) *logCollector {
	return &logCollector{logs: make([][]logEntry, n), inner: inner}
}

func (lc *logCollector) OnCommit(node types.NodeID, now time.Duration, c runtime.Committed) {
	lc.logs[node] = append(lc.logs[node], logEntry{Lane: c.Lane, Pos: c.Position, Dig: c.Batch.Digest()})
	if lc.inner != nil {
		lc.inner.OnCommit(node, now, c)
	}
}

// checkPrefixAgreement asserts every pair of replica logs agree on their
// common prefix (consensus safety: identical total order).
func checkPrefixAgreement(t *testing.T, logs [][]logEntry) {
	t.Helper()
	for i := 0; i < len(logs); i++ {
		for j := i + 1; j < len(logs); j++ {
			n := len(logs[i])
			if len(logs[j]) < n {
				n = len(logs[j])
			}
			for k := 0; k < n; k++ {
				if logs[i][k] != logs[j][k] {
					t.Fatalf("log divergence: r%d[%d]=%+v, r%d[%d]=%+v", i, k, logs[i][k], j, k, logs[j][k])
				}
			}
		}
	}
}

type clusterOpts struct {
	n              int
	verifySigs     bool
	fastPath       bool
	optimisticTips bool
	weakVotes      bool
	shards         int
	faults         *sim.FaultSchedule
	seed           uint64
	viewTimeout    time.Duration
}

// newClusterWith builds a cluster from a mutated default option set.
func newClusterWith(t *testing.T, mutate func(*clusterOpts)) *cluster {
	t.Helper()
	o := clusterOpts{n: 4}
	mutate(&o)
	return newCluster(o)
}

type cluster struct {
	engine   *sim.Engine
	nodes    []*core.Node
	logs     *logCollector
	recorder *metrics.Recorder
	ids      []types.NodeID
}

func newCluster(o clusterOpts) *cluster {
	if o.seed == 0 {
		o.seed = 42
	}
	committee := types.NewCommittee(o.n)
	var suite crypto.Suite
	if o.verifySigs {
		suite = crypto.NewEd25519Suite(o.n, o.seed)
	} else {
		suite = crypto.NewNopSuite(o.n)
	}
	rec := metrics.NewRecorder(5 * time.Minute)
	lc := newLogCollector(o.n, rec.Sink())
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Faults: o.faults,
		Seed:   o.seed,
	})
	c := &cluster{engine: eng, logs: lc, recorder: rec}
	for i := 0; i < o.n; i++ {
		nd := core.NewNode(core.Config{
			Committee:      committee,
			Self:           types.NodeID(i),
			Suite:          suite,
			VerifySigs:     o.verifySigs,
			FastPath:       o.fastPath,
			OptimisticTips: o.optimisticTips,
			WeakVotes:      o.weakVotes,
			Shards:         o.shards,
			ViewTimeout:    o.viewTimeout,
			Sink:           lc,
		})
		c.nodes = append(c.nodes, nd)
		eng.AddNode(nd)
		c.ids = append(c.ids, types.NodeID(i))
	}
	return c
}

func TestClusterCommitsUnderLoad(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts clusterOpts
	}{
		{"slow-path-certified", clusterOpts{n: 4, fastPath: false, optimisticTips: false}},
		{"fast-path-certified", clusterOpts{n: 4, fastPath: true, optimisticTips: false}},
		{"fast-path-optimistic", clusterOpts{n: 4, fastPath: true, optimisticTips: true}},
		{"slow-path-optimistic", clusterOpts{n: 4, fastPath: false, optimisticTips: true}},
		{"n7-fast-optimistic", clusterOpts{n: 7, fastPath: true, optimisticTips: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(tc.opts)
			workload.Install(c.engine, c.ids, workload.Config{
				TotalRate: 20000, Start: 0, End: 10 * time.Second,
			})
			c.engine.Run(14 * time.Second)

			total := c.recorder.Total()
			// 20k tx/s for 10s = 200k submitted; expect the vast majority
			// committed (tail flush included).
			if total < 190_000 {
				t.Fatalf("committed only %d of ~200000 txs", total)
			}
			lat := c.recorder.MeanLatency(2*time.Second, 9*time.Second)
			if lat <= 0 || lat > 2*time.Second {
				t.Fatalf("implausible steady-state latency %v", lat)
			}
			checkPrefixAgreement(t, c.logs.logs)
			t.Logf("committed=%d meanLat=%v p99=%v", total, lat, c.recorder.Percentile(0.99))
		})
	}
}

func TestClusterWithRealSignatures(t *testing.T) {
	c := newCluster(clusterOpts{n: 4, verifySigs: true, fastPath: true, optimisticTips: true})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 4000, Start: 0, End: 3 * time.Second,
	})
	c.engine.Run(6 * time.Second)
	if c.recorder.Total() < 10_000 {
		t.Fatalf("committed only %d txs with real crypto", c.recorder.Total())
	}
	checkPrefixAgreement(t, c.logs.logs)
}

func TestSeamlessLeaderFailure(t *testing.T) {
	// Crash one replica for 3 seconds mid-run. Consensus slots it leads
	// view-change past it; lanes keep growing; after the blip, commits
	// resume with no protocol-induced hangover (§A.3).
	faults := (&sim.FaultSchedule{}).AddDown(1, 5*time.Second, 8*time.Second)
	c := newCluster(clusterOpts{n: 4, fastPath: true, optimisticTips: true, faults: faults, viewTimeout: time.Second})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 20000, Start: 0, End: 20 * time.Second,
	})
	c.engine.Run(25 * time.Second)

	total := c.recorder.Total()
	if total < 350_000 { // 20k*20s = 400k minus the crashed replica's share shortfall
		t.Fatalf("committed only %d txs across leader failure", total)
	}
	checkPrefixAgreement(t, c.logs.logs)

	// Post-blip latency should return to steady state promptly.
	baseline := c.recorder.MeanLatency(2*time.Second, 5*time.Second)
	post := c.recorder.MeanLatency(10*time.Second, 19*time.Second)
	if post > 3*baseline+200*time.Millisecond {
		t.Fatalf("hangover: post-blip latency %v vs baseline %v", post, baseline)
	}
	t.Logf("baseline=%v post=%v total=%d", baseline, post, total)
}

func TestPartitionRecovery(t *testing.T) {
	// 2-2 split for 10s: consensus stalls (no quorum), lanes keep growing
	// within halves (f+1 reachable incl. self); on heal, the backlog
	// commits promptly.
	faults := (&sim.FaultSchedule{}).SplitPartition(4, []types.NodeID{2, 3}, 5*time.Second, 15*time.Second)
	c := newCluster(clusterOpts{n: 4, fastPath: true, optimisticTips: false, faults: faults, viewTimeout: time.Second})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 10000, Start: 0, End: 20 * time.Second,
	})
	c.engine.Run(40 * time.Second)

	total := c.recorder.Total()
	if total < 190_000 { // all 200k submitted should eventually commit
		t.Fatalf("committed only %d txs across partition", total)
	}
	checkPrefixAgreement(t, c.logs.logs)

	// Lanes must have kept growing during the partition: transactions
	// arriving mid-partition commit shortly after heal, not tens of
	// seconds later (throughput-hangover bound).
	series := c.recorder.ArrivalSeries()
	var worst time.Duration
	for _, p := range series {
		if p.Second >= 5 && p.Second < 15 && p.MeanLat > worst {
			worst = p.MeanLat
		}
	}
	// A tx arriving at t=5s can commit no earlier than heal (t=15s): 10s
	// latency. It must not take much longer than the remaining blip.
	if worst > 13*time.Second {
		t.Fatalf("partition backlog commit too slow: worst in-blip latency %v", worst)
	}
	t.Logf("total=%d worstInBlipLatency=%v", total, worst)
}

func TestLeaderScheduleOffset(t *testing.T) {
	c := types.NewCommittee(4)
	got := fmt.Sprint(c.Leader(1, 0), c.Leader(2, 0), c.Leader(1, 1))
	if got != "r3 r2 r0" {
		t.Fatalf("leader schedule = %s", got)
	}
}
