package core_test

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/storage"
	"repro/internal/types"
)

// recordingCtx captures sends for assertions.
type recordingCtx struct {
	nopCtx
	sends []types.Message
}

func (c *recordingCtx) Send(_ types.NodeID, m types.Message) { c.sends = append(c.sends, m) }
func (c *recordingCtx) Broadcast(m types.Message)            { c.sends = append(c.sends, m) }

// syncTrackingJournal wraps a journal and records the interleaving of
// appended records, Sync barriers and the releases that follow.
type syncTrackingJournal struct {
	core.Journal
	appends int
	syncs   int
	// appendsAtSync snapshots how many records each Sync covered.
	appendsAtSync []int
}

func (j *syncTrackingJournal) OwnProposal(p *types.Proposal) { j.appends++; j.Journal.OwnProposal(p) }
func (j *syncTrackingJournal) LaneVote(v *types.Vote)        { j.appends++; j.Journal.LaneVote(v) }
func (j *syncTrackingJournal) PrepVote(v *types.PrepVote)    { j.appends++; j.Journal.PrepVote(v) }
func (j *syncTrackingJournal) Sync() error {
	j.syncs++
	j.appendsAtSync = append(j.appendsAtSync, j.appends)
	return j.Journal.Sync()
}

func groupCommitNode(t *testing.T, j core.Journal) *core.Node {
	t.Helper()
	return core.NewNode(core.Config{
		Committee:      types.NewCommittee(4),
		Self:           1,
		Suite:          crypto.NewNopSuite(4),
		FastPath:       true,
		OptimisticTips: true,
		Journal:        j,
		GroupCommit:    true,
	})
}

// TestGroupCommitGatesSendsUntilFlush pins the write-before-externalize
// ordering under group commit: an event that journals records and sends
// messages must emit nothing until Flush, and Flush must Sync the
// journal before releasing the sends.
func TestGroupCommitGatesSendsUntilFlush(t *testing.T) {
	j := &syncTrackingJournal{Journal: core.NewMemJournal()}
	nd := groupCommitNode(t, j)
	ctx := &recordingCtx{}

	nd.Init(ctx)
	nd.Flush(ctx)
	ctx.sends = nil

	// A sealed client batch produces an own-lane proposal: journaled and
	// broadcast — but the broadcast must wait for the barrier.
	nd.OnClientBatch(ctx, types.NewBatch(1, 1, []types.Transaction{{1, 2, 3}}, 0))
	if len(ctx.sends) != 0 {
		t.Fatalf("%d sends escaped before Flush", len(ctx.sends))
	}
	if j.appends == 0 {
		t.Fatal("no journal record appended for the proposal")
	}
	syncsBefore := j.syncs
	nd.Flush(ctx)
	if j.syncs != syncsBefore+1 {
		t.Fatalf("Flush ran %d syncs, want 1", j.syncs-syncsBefore)
	}
	if len(ctx.sends) == 0 {
		t.Fatal("Flush released no sends")
	}
	if _, ok := ctx.sends[0].(*types.Proposal); !ok {
		t.Fatalf("first released send = %T, want *types.Proposal", ctx.sends[0])
	}
	// The barrier covered the records appended by the handler.
	if got := j.appendsAtSync[len(j.appendsAtSync)-1]; got != j.appends {
		t.Fatalf("Sync covered %d of %d appended records", got, j.appends)
	}

	// Flush with nothing pending must not re-send.
	n := len(ctx.sends)
	nd.Flush(ctx)
	if len(ctx.sends) != n {
		t.Fatal("idle Flush produced sends")
	}
}

// TestGroupCommitPreservesSendOrder: releases happen in the order the
// handler issued them (a vote for a peer proposal followed by another
// event's sends must not interleave out of order).
func TestGroupCommitPreservesSendOrder(t *testing.T) {
	nd := groupCommitNode(t, core.NewMemJournal())
	peer := core.NewNode(core.Config{
		Committee: types.NewCommittee(4),
		Self:      0,
		Suite:     crypto.NewNopSuite(4),
	})
	pctx := &recordingCtx{}
	peer.Init(pctx)
	pctx.sends = nil
	peer.OnClientBatch(pctx, types.NewBatch(0, 1, []types.Transaction{{9}}, 0))
	if len(pctx.sends) == 0 {
		t.Fatal("peer produced no proposal")
	}
	prop := pctx.sends[0].(*types.Proposal)

	ctx := &recordingCtx{}
	nd.Init(ctx)
	nd.Flush(ctx)
	ctx.sends = nil
	nd.OnMessage(ctx, 0, prop)                                                      // lane vote (gated)
	nd.OnClientBatch(ctx, types.NewBatch(1, 1, []types.Transaction{{1, 2, 3}}, 50)) // own proposal (gated)
	if len(ctx.sends) != 0 {
		t.Fatal("sends escaped before Flush")
	}
	nd.Flush(ctx)
	if len(ctx.sends) < 2 {
		t.Fatalf("released %d sends, want at least vote+proposal", len(ctx.sends))
	}
	if _, ok := ctx.sends[0].(*types.Vote); !ok {
		t.Fatalf("first release = %T, want the earlier *types.Vote", ctx.sends[0])
	}
	if _, ok := ctx.sends[1].(*types.Proposal); !ok {
		t.Fatalf("second release = %T, want the later *types.Proposal", ctx.sends[1])
	}
}

// TestWALJournalGroupCommitAmortizesFlushes pins the storage-level win:
// N records journaled under one Sync cost one store flush, not N.
func TestWALJournalGroupCommitAmortizesFlushes(t *testing.T) {
	st, err := storage.Open(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)
	defer j.Close()

	const records = 100
	for i := 0; i < records; i++ {
		j.PrepVote(&types.PrepVote{Slot: types.Slot(i), View: 0, Voter: 1, Sig: []byte{1}})
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Appends != records {
		t.Fatalf("appends = %d, want %d", s.Appends, records)
	}
	if s.Flushes != 1 {
		t.Fatalf("flushes = %d for %d records, want 1 (group commit)", s.Flushes, records)
	}
	// An idle barrier is free.
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Flushes != 1 {
		t.Fatal("idle Sync flushed")
	}
}

// BenchmarkJournalGroupCommit compares per-record barriers (the pre-PR
// behavior: every record flushed before its send) against group commit
// at realistic burst sizes.
func BenchmarkJournalGroupCommit(b *testing.B) {
	run := func(b *testing.B, every int) {
		st, err := storage.Open(filepath.Join(b.TempDir(), "wal"))
		if err != nil {
			b.Fatal(err)
		}
		j := core.NewWALJournal(st)
		defer j.Close()
		v := &types.PrepVote{Slot: 1, View: 0, Voter: 1, Sig: make([]byte, 64)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Slot = types.Slot(i)
			j.PrepVote(v)
			if (i+1)%every == 0 {
				if err := j.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		s := st.Stats()
		b.ReportMetric(float64(s.Appends)/float64(max(s.Flushes, 1)), "records/flush")
	}
	b.Run("barrier-every-1", func(b *testing.B) { run(b, 1) })
	b.Run("barrier-every-16", func(b *testing.B) { run(b, 16) })
	b.Run("barrier-every-64", func(b *testing.B) { run(b, 64) })
}

var _ runtime.Flusher = (*core.Node)(nil)
