// Snapshot lifecycle and snapshot-based state sync. With the execution
// layer on (Config.Execution), the replica periodically checkpoints the
// execution state (Config.SnapshotEvery slots), truncates its journal
// and lane stores beneath the checkpoint's frontier — bounding on-disk
// growth — and serves the latest snapshot to peers. A replica that
// discovers it is hopelessly behind (a commit notice at least two
// snapshot intervals above its own frontier) joins in O(state) instead
// of O(history): fetch the manifest, fetch and verify each chunk, verify
// the assembled state hash, install, and resume ordered replay from the
// snapshot frontier.
package core

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/runtime"
	"repro/internal/types"
)

// SnapshotStore persists the latest execution snapshot (one slot: each
// Save replaces the previous snapshot). Implementations must be
// crash-atomic — a torn Save must leave the previous snapshot loadable.
type SnapshotStore interface {
	Save(manifest, state []byte) error
	Load() (manifest, state []byte, err error)
}

// MemSnapshots is an in-memory SnapshotStore for simulated deployments:
// like the in-memory journal, the cluster retains it across protocol
// rebuilds (warm restart) and replaces it on amnesia.
type MemSnapshots struct {
	mu       sync.Mutex
	manifest []byte
	state    []byte
}

func (s *MemSnapshots) Save(manifest, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest = append([]byte(nil), manifest...)
	s.state = append([]byte(nil), state...)
	return nil
}

func (s *MemSnapshots) Load() ([]byte, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifest, s.state, nil
}

// snapGCMargin is how many positions below the snapshot frontier lane
// stores retain after truncation: peers mid-sync may still request
// ranges just beneath the frontier.
const snapGCMargin = 128

// loadSnapshot reads and validates the persisted snapshot at startup.
// Any defect — torn file, undecodable manifest, state/manifest mismatch
// — degrades to "no snapshot" (the journal or genesis takes over).
func (n *Node) loadSnapshot() (*exec.Manifest, []byte) {
	if n.cfg.Snapshots == nil {
		return nil, nil
	}
	enc, state, err := n.cfg.Snapshots.Load()
	if err != nil || enc == nil {
		return nil, nil
	}
	man, err := exec.DecodeManifest(enc)
	if err != nil || len(man.Frontier) != n.cfg.Committee.Size() {
		return nil, nil
	}
	if err := man.VerifyState(state); err != nil {
		return nil, nil
	}
	return man, state
}

// maybeSnapshot checkpoints the execution state when the frontier has
// advanced a full snapshot interval past the previous checkpoint, then
// truncates everything the checkpoint subsumes. Ordering is the
// crash-safety invariant: the snapshot is durably saved BEFORE the
// journal truncates, so a crash between the two leaves both a complete
// snapshot and a complete journal — recovery takes the newer frontier.
func (n *Node) maybeSnapshot() {
	if n.machine == nil || n.cfg.Snapshots == nil || n.cfg.SnapshotEvery == 0 {
		return
	}
	next := n.orderer.NextExec()
	if next < n.lastSnap+n.cfg.SnapshotEvery {
		return
	}
	state := n.machine.Serialize()
	frontier := n.orderer.Frontier()
	digests := n.orderer.FrontierDigests()
	man := exec.BuildManifest(next, frontier, digests, n.machine.AppHash(), n.machine.Count(), state)
	enc := man.Encode()
	if err := n.cfg.Snapshots.Save(enc, state); err != nil {
		// Keep serving the previous snapshot; never truncate without a
		// durable replacement.
		return
	}
	n.snapMan, n.snapEnc, n.snapState = man, enc, state
	n.lastSnap = next
	n.stats.SnapshotFrontier.Store(uint64(next))
	n.cfg.Journal.Truncate(n.cfg.Self, frontier, next)
	for _, l := range n.cfg.Committee.Nodes() {
		if frontier[l] > snapGCMargin {
			n.lanes.Store().GCBelow(l, frontier[l]-snapGCMargin)
		}
	}
}

// maybeStateSync starts a snapshot sync when a commit notice reveals the
// replica is at least two snapshot intervals behind the sender: replay
// would cost O(history) — and with truncating peers the history below
// their snapshot frontiers is not even fetchable — so fetch state.
func (n *Node) maybeStateSync(ctx runtime.Context, from types.NodeID, decided types.Slot) {
	if n.machine == nil || n.cfg.SnapshotEvery == 0 || n.replaying || from == n.cfg.Self {
		return
	}
	if n.snapSync.Active() {
		return
	}
	if decided < n.orderer.NextExec()+2*n.cfg.SnapshotEvery {
		return
	}
	if n.snapSync.Begin(ctx.Now(), from) {
		ctx.Send(from, &types.SnapshotRequest{Requester: n.cfg.Self})
	}
}

func (n *Node) serveSnapshotRequest(ctx runtime.Context, req *types.SnapshotRequest) {
	if n.snapEnc == nil || req.Requester == n.cfg.Self {
		return
	}
	ctx.Send(req.Requester, &types.SnapshotManifest{Manifest: n.snapEnc})
}

func (n *Node) handleSnapshotManifest(ctx runtime.Context, from types.NodeID, m *types.SnapshotManifest) {
	if !n.snapSync.Active() || from != n.snapSync.Target() {
		return
	}
	man, err := exec.DecodeManifest(m.Manifest)
	if err != nil || len(man.Frontier) != n.cfg.Committee.Size() || man.Next <= n.orderer.NextExec() {
		// Useless or hostile manifest: leave the sync to stall and rotate.
		return
	}
	if n.syncMan != nil {
		if man.StateHash == n.syncMan.StateHash {
			// Duplicate manifest (retry): chase only what is missing.
			n.snapSync.Touch(ctx.Now())
			n.requestMissingChunks(ctx, from)
			return
		}
		if man.Next < n.syncMan.Next {
			return // older than the snapshot already being fetched
		}
	}
	n.syncMan = man
	n.syncChunks = make([][]byte, len(man.Chunks))
	n.syncGot = 0
	n.snapSync.Touch(ctx.Now())
	n.requestMissingChunks(ctx, from)
}

func (n *Node) requestMissingChunks(ctx runtime.Context, target types.NodeID) {
	for i, c := range n.syncChunks {
		if c == nil {
			ctx.Send(target, &types.ChunkRequest{StateHash: n.syncMan.StateHash, Index: uint32(i), Requester: n.cfg.Self})
		}
	}
}

func (n *Node) serveChunkRequest(ctx runtime.Context, req *types.ChunkRequest) {
	if n.snapMan == nil || req.StateHash != n.snapMan.StateHash || req.Requester == n.cfg.Self {
		return
	}
	data := n.snapMan.Chunk(n.snapState, int(req.Index))
	if data == nil {
		return
	}
	ctx.Send(req.Requester, &types.ChunkReply{StateHash: req.StateHash, Index: req.Index, Data: data})
}

func (n *Node) handleChunkReply(ctx runtime.Context, from types.NodeID, m *types.ChunkReply) {
	if !n.snapSync.Active() || n.syncMan == nil || m.StateHash != n.syncMan.StateHash {
		return
	}
	i := int(m.Index)
	if i >= len(n.syncChunks) || n.syncChunks[i] != nil {
		return
	}
	if err := n.syncMan.VerifyChunk(i, m.Data); err != nil {
		return
	}
	n.syncChunks[i] = m.Data
	n.syncGot++
	n.snapSync.Touch(ctx.Now())
	if n.syncGot < len(n.syncChunks) {
		return
	}
	state := make([]byte, 0, n.syncMan.StateLen)
	for _, c := range n.syncChunks {
		state = append(state, c...)
	}
	man := n.syncMan
	n.syncMan, n.syncChunks, n.syncGot = nil, nil, 0
	n.snapSync.Reset()
	if err := man.VerifyState(state); err != nil {
		return // per-chunk hashes passed but the whole didn't: discard
	}
	n.installSnapshot(ctx, man, state)
}

// installSnapshot adopts a verified remote snapshot: the machine takes
// the state, the orderer jumps to the snapshot frontier, the lane layer
// adopts the committed frontiers (vote-frontier adoption + fork GC,
// exactly as local execution would have), and ordered replay resumes
// above the frontier.
func (n *Node) installSnapshot(ctx runtime.Context, man *exec.Manifest, state []byte) {
	if man.Next <= n.orderer.NextExec() {
		return // local replay passed the snapshot while it downloaded
	}
	if err := n.machine.Install(state); err != nil {
		return
	}
	n.orderer.InstallSnapshot(man.Next, man.Frontier, man.Digests)
	for _, l := range n.cfg.Committee.Nodes() {
		if pos := man.Frontier[l]; pos > 0 {
			if n.sharded {
				ctx.Send(n.cfg.Self, &frontierMsg{lane: l, pos: pos, digest: man.Digests[l]})
			} else {
				for _, p := range n.lanes.OnCommitted(l, pos, man.Digests[l]) {
					n.stats.BatchesProposed.Add(1)
					ctx.Broadcast(p)
				}
			}
		}
		// Range fetches for history beneath the frontier are moot (and,
		// against truncating peers, unservable); fetches spanning it are
		// rebased to their still-wanted upper remainder and re-sent now —
		// a genesis-deep pre-install gap fetch otherwise pins the
		// outstanding-position budget (and a proportionally long retry
		// deadline), wedging the post-install execute fetches behind it
		// for a time that grows with history depth.
		for _, e := range n.fetcher.Rebase(ctx.Now(), l, man.Frontier[l]) {
			ctx.Send(e.To, e.Msg)
		}
	}
	n.cfg.Journal.Executed(man.Next, man.Frontier, man.Digests, man.AppHash, man.Count)
	enc := man.Encode()
	if n.cfg.Snapshots != nil {
		if err := n.cfg.Snapshots.Save(enc, state); err == nil {
			n.cfg.Journal.Truncate(n.cfg.Self, man.Frontier, man.Next)
		}
	}
	n.snapMan, n.snapEnc, n.snapState = man, enc, state
	n.lastSnap = man.Next
	n.stats.SnapshotFrontier.Store(uint64(man.Next))
	n.stats.SnapshotsInstalled.Add(1)
	n.engine.OnTipsAdvanced()
	n.drainExecution(ctx)
}

// tickStateSync retries a stalled state sync on the fetch tick, rotating
// targets; an exhausted attempt budget abandons the sync (ordinary range
// fetching remains as the fallback).
func (n *Node) tickStateSync(ctx runtime.Context) {
	if !n.snapSync.Stalled(ctx.Now()) {
		return
	}
	target, ok := n.snapSync.Rotate(ctx.Now(), n.cfg.Committee.Size(), n.cfg.Self)
	if !ok {
		n.syncMan, n.syncChunks, n.syncGot = nil, nil, 0
		return
	}
	// Always re-open with a manifest request: the new target may hold a
	// different (newer) snapshot, and a duplicate manifest for the one in
	// flight just re-drives the missing chunks.
	ctx.Send(target, &types.SnapshotRequest{Requester: n.cfg.Self})
}
