// Journal: the replica's durable record of safety-critical protocol
// state, written before that state is externalized. The paper's
// prototype persists all lane data and protocol state to RocksDB and its
// seamlessness story depends on replicas returning from blips without
// hurting safety; this file is the reproduction's equivalent, backed by
// internal/storage's write-ahead log (real deployments) or an in-memory
// store (simulated restarts), with a no-op default for deployments that
// accept amnesia on crash.
//
// What is journaled — exactly the state whose loss lets a restarted
// replica contradict its pre-crash self:
//
//   - own-lane proposals (never equivocate at a proposed position)
//   - lane FIFO votes (never vote a different digest at a voted position)
//   - consensus PrepVotes / ConfirmAcks / Timeouts per (slot, view)
//   - decided CommitQCs and the execution frontier (resume without
//     re-emitting; fetch missing data via the normal non-blocking sync)
//
// Everything else (peer lane data, PoAs, aggregation state) is rebuilt
// from live traffic and sync, exactly as a lagging replica would.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wire"
)

// Journal durably records a replica's safety-critical state before it is
// externalized and replays it on restart. Implementations must be safe
// for concurrent use: under the sharded data plane, shard workers append
// lane records while the control plane appends consensus records, and
// each caller's FlushShard/Flush barrier Syncs the shared journal.
// Recover is called once, before any write.
type Journal interface {
	// OwnProposal records a newly produced own-lane proposal.
	OwnProposal(p *types.Proposal)
	// LaneVote records a FIFO vote for a peer-lane proposal.
	LaneVote(v *types.Vote)
	// PrepVote records a consensus prepare vote (weak or strong).
	PrepVote(v *types.PrepVote)
	// ConfirmAck records a consensus confirm ack.
	ConfirmAck(a *types.ConfirmAck)
	// Timeout records a view-change complaint.
	Timeout(t *types.Timeout)
	// Commit records a decided slot's certificate and proposal.
	Commit(n *types.CommitNotice)
	// Executed records the execution frontier after slots execute: the
	// next slot awaiting execution plus per-lane committed positions and
	// digests, and — when the execution layer is enabled — the AppHash
	// chain oracle at that frontier (the chain hash and its length), so
	// a recovered replica resumes the exact cross-replica oracle value.
	Executed(next types.Slot, frontier []types.Pos, digests []types.Digest, appHash types.Digest, chainCount uint64)
	// Truncate drops records the snapshot frontier has made redundant:
	// own proposals at or below the own-lane frontier, lane votes at or
	// below their lane's frontier, and per-slot consensus records below
	// the snapshot slot. Durable implementations compact the backing log
	// afterwards, bounding on-disk growth. Safe because the snapshot
	// (written first) subsumes everything dropped: recovery restores at
	// the newer of the snapshot and journal frontiers.
	Truncate(self types.NodeID, frontier []types.Pos, below types.Slot)
	// Sync is the group-commit barrier: it makes every record appended
	// since the previous Sync durable (one WAL flush covering the whole
	// group) and is a no-op when nothing was appended. The replica calls
	// it once per event-loop burst, before releasing the sends those
	// records gate (write-before-externalize).
	Sync() error
	// Recover returns the state a previous incarnation journaled (empty
	// when the journal is fresh).
	Recover() *Recovered
	// Close releases the backing store.
	Close() error
}

// Recovered is a journal snapshot from a previous incarnation. Slices
// are sorted (proposals by position; commits by slot; votes, acks and
// timeouts by slot then view) so recovery is deterministic regardless of
// the backing store's iteration order.
type Recovered struct {
	OwnProposals    []*types.Proposal
	LaneVotes       map[types.NodeID]map[types.Pos]types.Digest
	PrepVotes       []*types.PrepVote
	ConfirmAcks     []*types.ConfirmAck
	Timeouts        []*types.Timeout
	Commits         []*types.CommitNotice
	NextExec        types.Slot
	Frontier        []types.Pos
	FrontierDigests []types.Digest
	// AppHash/ChainCount restore the execution chain oracle at NextExec
	// (zero when the execution layer never ran).
	AppHash    types.Digest
	ChainCount uint64
}

// Empty reports whether the snapshot carries no recorded state.
func (r *Recovered) Empty() bool {
	return r == nil || (len(r.OwnProposals) == 0 && len(r.LaneVotes) == 0 &&
		len(r.PrepVotes) == 0 && len(r.ConfirmAcks) == 0 && len(r.Timeouts) == 0 &&
		len(r.Commits) == 0 && r.NextExec <= 1)
}

// NopJournal discards everything: a replica configured with it restarts
// with amnesia.
type NopJournal struct{}

func (NopJournal) OwnProposal(*types.Proposal)  {}
func (NopJournal) LaneVote(*types.Vote)         {}
func (NopJournal) PrepVote(*types.PrepVote)     {}
func (NopJournal) ConfirmAck(*types.ConfirmAck) {}
func (NopJournal) Timeout(*types.Timeout)       {}
func (NopJournal) Commit(*types.CommitNotice)   {}
func (NopJournal) Executed(types.Slot, []types.Pos, []types.Digest, types.Digest, uint64) {
}
func (NopJournal) Truncate(types.NodeID, []types.Pos, types.Slot) {}
func (NopJournal) Sync() error                                    { return nil }
func (NopJournal) Recover() *Recovered                            { return &Recovered{} }
func (NopJournal) Close() error                                   { return nil }

// journalStore is the key/value substrate a journal writes through,
// satisfied by storage.Store (durable) and memStore (simulated).
type journalStore interface {
	Put(key, val []byte) error
	Delete(key []byte) error
	Range(fn func(key, val []byte) bool)
	Flush() error
	Close() error
}

// memStore keeps journal records in memory: it survives a simulated
// protocol teardown (the cluster holds it across node rebuilds) but not
// the process. Used by the simulator's Restart fault and by tests.
type memStore struct {
	m map[string][]byte
}

func (s *memStore) Put(key, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.m[string(key)] = cp
	return nil
}

func (s *memStore) Range(fn func(key, val []byte) bool) {
	// Canonical key order: recovery replays through Range, so iteration
	// order must not depend on map layout (detrange).
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), s.m[k]) {
			return
		}
	}
}

func (s *memStore) Delete(key []byte) error {
	delete(s.m, string(key))
	return nil
}

func (s *memStore) Flush() error { return nil }
func (s *memStore) Close() error { return nil }

// Record key prefixes. Unknown prefixes are ignored on recovery, so a
// journal store may host auxiliary records.
const (
	keyOwnProposal = 'p' // + position(8)          -> wire(Proposal)
	keyLaneVote    = 'v' // + lane(2) + position(8) -> digest(32)
	keyPrepVote    = 'c' // + slot(8) + view(8)     -> wire(PrepVote)
	keyConfirmAck  = 'a' // + slot(8) + view(8)     -> wire(ConfirmAck)
	keyTimeout     = 't' // + slot(8) + view(8)     -> wire(Timeout)
	keyCommit      = 'q' // + slot(8)               -> wire(CommitNotice)
	keyExec        = 'x' //                         -> next(8) + count(4) + count*(pos(8) + digest(32)) [+ appHash(32) + chainCount(8)]
)

// walJournal implements Journal over a journalStore, encoding records
// with the canonical wire codec. Records accumulate in the store's write
// buffer until Sync, the group-commit barrier: one flush (for
// storage.Store, one write syscall; fsync cadence stays under
// storage.Store.SyncEvery) covers every record of an event-loop burst,
// instead of one flush per record. The replica releases the sends those
// records gate only after Sync returns, so write-before-externalize is
// preserved. Write errors are sticky and reported by Err — the prototype
// keeps running, trading the durability guarantee for availability,
// which mirrors the paper's prototype's crash-durability posture.
type walJournal struct {
	mu    sync.Mutex // appends arrive from shard workers and the control loop
	st    journalStore
	dirty bool
	err   error
}

// NewWALJournal wraps a storage.Store as a durable replica journal.
func NewWALJournal(st *storage.Store) Journal { return &walJournal{st: st} }

// NewMemJournal builds an in-memory journal that survives protocol
// teardown but not the process (simulated restarts, tests).
func NewMemJournal() Journal { return &walJournal{st: &memStore{m: make(map[string][]byte)}} }

func (j *walJournal) fail(err error) {
	if j.err == nil && err != nil {
		j.err = err
	}
}

// Err returns the first write or encode error, if any.
func (j *walJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *walJournal) put(key []byte, val []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.st.Put(key, val); err != nil {
		j.fail(err)
		return
	}
	j.dirty = true
}

// Sync flushes every record appended since the last Sync (no-op when
// none were): the group-commit barrier. Concurrent callers (shard
// flushes, the control loop's flush) serialize here; each caller's
// records are durable once its own Sync returns, regardless of which
// caller's Flush physically wrote them.
func (j *walJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.dirty {
		return j.err
	}
	j.dirty = false
	j.fail(j.st.Flush())
	return j.err
}

func (j *walJournal) putMsg(key []byte, m types.Message) {
	// Pooled encode: both stores copy val (index + log buffer), so the
	// buffer can be recycled as soon as Put returns.
	buf := wire.GetBuf(wire.SizeHint(m))
	var err error
	buf.B, err = wire.EncodeTo(buf.B, m)
	if err != nil {
		buf.Release()
		j.fail(fmt.Errorf("journal: encode %T: %w", m, err))
		return
	}
	j.put(key, buf.B)
	buf.Release()
}

func (j *walJournal) OwnProposal(p *types.Proposal) {
	key := make([]byte, 9)
	key[0] = keyOwnProposal
	binary.LittleEndian.PutUint64(key[1:], uint64(p.Position))
	j.putMsg(key, p)
}

func (j *walJournal) LaneVote(v *types.Vote) {
	key := make([]byte, 11)
	key[0] = keyLaneVote
	binary.LittleEndian.PutUint16(key[1:], uint16(v.Lane))
	binary.LittleEndian.PutUint64(key[3:], uint64(v.Position))
	j.put(key, v.Digest[:])
}

func slotViewKey(prefix byte, s types.Slot, v types.View) []byte {
	key := make([]byte, 17)
	key[0] = prefix
	binary.LittleEndian.PutUint64(key[1:], uint64(s))
	binary.LittleEndian.PutUint64(key[9:], uint64(v))
	return key
}

func (j *walJournal) PrepVote(v *types.PrepVote) {
	j.putMsg(slotViewKey(keyPrepVote, v.Slot, v.View), v)
}

func (j *walJournal) ConfirmAck(a *types.ConfirmAck) {
	j.putMsg(slotViewKey(keyConfirmAck, a.Slot, a.View), a)
}

func (j *walJournal) Timeout(t *types.Timeout) {
	j.putMsg(slotViewKey(keyTimeout, t.Slot, t.View), t)
}

func (j *walJournal) Commit(n *types.CommitNotice) {
	key := make([]byte, 9)
	key[0] = keyCommit
	binary.LittleEndian.PutUint64(key[1:], uint64(n.QC.Slot))
	j.putMsg(key, n)
}

func (j *walJournal) Executed(next types.Slot, frontier []types.Pos, digests []types.Digest, appHash types.Digest, chainCount uint64) {
	if len(digests) != len(frontier) {
		j.fail(fmt.Errorf("journal: frontier/digest length mismatch"))
		return
	}
	val := make([]byte, 0, 12+len(frontier)*(8+types.DigestSize)+types.DigestSize+8)
	val = binary.LittleEndian.AppendUint64(val, uint64(next))
	val = binary.LittleEndian.AppendUint32(val, uint32(len(frontier)))
	for i, pos := range frontier {
		val = binary.LittleEndian.AppendUint64(val, uint64(pos))
		val = append(val, digests[i][:]...)
	}
	// Chain-oracle trailer, only when the execution layer has run: legacy
	// records (and execution-off deployments) omit it and recover with a
	// zero oracle.
	if chainCount > 0 || appHash != types.ZeroDigest {
		val = append(val, appHash[:]...)
		val = binary.LittleEndian.AppendUint64(val, chainCount)
	}
	j.put([]byte{keyExec}, val)
}

// Truncate deletes journal records subsumed by a snapshot at the given
// frontier, then compacts the backing log when it supports it. Keys are
// collected under Range and sorted before deletion so the tombstone
// order (and thus the compacted log) is deterministic (detrange).
func (j *walJournal) Truncate(self types.NodeID, frontier []types.Pos, below types.Slot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var doomed []string
	j.st.Range(func(key, val []byte) bool {
		if len(key) == 0 {
			return true
		}
		switch key[0] {
		case keyOwnProposal:
			if len(key) == 9 && int(self) < len(frontier) {
				pos := types.Pos(binary.LittleEndian.Uint64(key[1:]))
				if pos <= frontier[self] {
					doomed = append(doomed, string(key))
				}
			}
		case keyLaneVote:
			if len(key) == 11 {
				lane := int(binary.LittleEndian.Uint16(key[1:]))
				pos := types.Pos(binary.LittleEndian.Uint64(key[3:]))
				if lane < len(frontier) && pos <= frontier[lane] {
					doomed = append(doomed, string(key))
				}
			}
		case keyPrepVote, keyConfirmAck, keyTimeout:
			if len(key) == 17 && types.Slot(binary.LittleEndian.Uint64(key[1:])) < below {
				doomed = append(doomed, string(key))
			}
		case keyCommit:
			if len(key) == 9 && types.Slot(binary.LittleEndian.Uint64(key[1:])) < below {
				doomed = append(doomed, string(key))
			}
		}
		return true
	})
	sort.Strings(doomed)
	for _, k := range doomed {
		if err := j.st.Delete([]byte(k)); err != nil {
			j.fail(err)
			return
		}
		j.dirty = true
	}
	if c, ok := j.st.(interface{ Compact() error }); ok {
		if err := c.Compact(); err != nil {
			j.fail(fmt.Errorf("journal: compact: %w", err))
			return
		}
		j.dirty = false
	}
}

// Recover decodes every record in the store into a deterministic
// snapshot. Individually undecodable records are skipped (the store
// already drops torn tails; a skipped record degrades recovery to the
// same conservative amnesia a fresh journal has for that entry).
func (j *walJournal) Recover() *Recovered {
	rec := &Recovered{LaneVotes: make(map[types.NodeID]map[types.Pos]types.Digest)}
	j.st.Range(func(key, val []byte) bool {
		if len(key) == 0 {
			return true
		}
		switch key[0] {
		case keyOwnProposal:
			if m, err := wire.Decode(val); err == nil {
				if p, ok := m.(*types.Proposal); ok {
					rec.OwnProposals = append(rec.OwnProposals, p)
				}
			}
		case keyLaneVote:
			if len(key) != 11 || len(val) != types.DigestSize {
				return true
			}
			lane := types.NodeID(binary.LittleEndian.Uint16(key[1:]))
			pos := types.Pos(binary.LittleEndian.Uint64(key[3:]))
			var d types.Digest
			copy(d[:], val)
			m := rec.LaneVotes[lane]
			if m == nil {
				m = make(map[types.Pos]types.Digest)
				rec.LaneVotes[lane] = m
			}
			m[pos] = d
		case keyPrepVote:
			if m, err := wire.Decode(val); err == nil {
				if v, ok := m.(*types.PrepVote); ok {
					rec.PrepVotes = append(rec.PrepVotes, v)
				}
			}
		case keyConfirmAck:
			if m, err := wire.Decode(val); err == nil {
				if a, ok := m.(*types.ConfirmAck); ok {
					rec.ConfirmAcks = append(rec.ConfirmAcks, a)
				}
			}
		case keyTimeout:
			if m, err := wire.Decode(val); err == nil {
				if t, ok := m.(*types.Timeout); ok {
					rec.Timeouts = append(rec.Timeouts, t)
				}
			}
		case keyCommit:
			if m, err := wire.Decode(val); err == nil {
				if n, ok := m.(*types.CommitNotice); ok {
					rec.Commits = append(rec.Commits, n)
				}
			}
		case keyExec:
			if len(val) < 12 {
				return true
			}
			next := types.Slot(binary.LittleEndian.Uint64(val))
			count := int(binary.LittleEndian.Uint32(val[8:]))
			base := 12 + count*(8+types.DigestSize)
			// Two valid shapes: the base record, or base + the chain-oracle
			// trailer (appHash + chainCount) written when execution is on.
			if count < 0 || (len(val) != base && len(val) != base+types.DigestSize+8) {
				return true
			}
			rec.NextExec = next
			rec.Frontier = make([]types.Pos, count)
			rec.FrontierDigests = make([]types.Digest, count)
			off := 12
			for i := 0; i < count; i++ {
				rec.Frontier[i] = types.Pos(binary.LittleEndian.Uint64(val[off:]))
				copy(rec.FrontierDigests[i][:], val[off+8:])
				off += 8 + types.DigestSize
			}
			if len(val) == base+types.DigestSize+8 {
				copy(rec.AppHash[:], val[base:])
				rec.ChainCount = binary.LittleEndian.Uint64(val[base+types.DigestSize:])
			}
		}
		return true
	})
	sort.Slice(rec.OwnProposals, func(i, k int) bool {
		return rec.OwnProposals[i].Position < rec.OwnProposals[k].Position
	})
	sort.Slice(rec.PrepVotes, func(i, k int) bool {
		a, b := rec.PrepVotes[i], rec.PrepVotes[k]
		return a.Slot < b.Slot || (a.Slot == b.Slot && a.View < b.View)
	})
	sort.Slice(rec.ConfirmAcks, func(i, k int) bool {
		a, b := rec.ConfirmAcks[i], rec.ConfirmAcks[k]
		return a.Slot < b.Slot || (a.Slot == b.Slot && a.View < b.View)
	})
	sort.Slice(rec.Timeouts, func(i, k int) bool {
		a, b := rec.Timeouts[i], rec.Timeouts[k]
		return a.Slot < b.Slot || (a.Slot == b.Slot && a.View < b.View)
	})
	sort.Slice(rec.Commits, func(i, k int) bool {
		return rec.Commits[i].QC.Slot < rec.Commits[k].QC.Slot
	})
	return rec
}

func (j *walJournal) Close() error {
	if err := j.st.Close(); err != nil {
		return err
	}
	return j.err
}

// laneJournal adapts Journal to lane.Journal.
type laneJournal struct{ j Journal }

func (l laneJournal) OwnProposal(p *types.Proposal) { l.j.OwnProposal(p) }
func (l laneJournal) Vote(v *types.Vote)            { l.j.LaneVote(v) }

// consJournal adapts Journal to consensus.Journal.
type consJournal struct{ n *Node }

func (c consJournal) PrepVote(v *types.PrepVote)     { c.n.cfg.Journal.PrepVote(v) }
func (c consJournal) ConfirmAck(a *types.ConfirmAck) { c.n.cfg.Journal.ConfirmAck(a) }
func (c consJournal) Timeout(t *types.Timeout)       { c.n.cfg.Journal.Timeout(t) }

func (c consJournal) Commit(m *types.CommitNotice) {
	if c.n.replaying {
		return // re-delivery of an already-journaled notice (recovery)
	}
	c.n.cfg.Journal.Commit(m)
}
