package core

import (
	"repro/internal/crypto"
	"repro/internal/lane"
	"repro/internal/runtime"
	"repro/internal/types"
)

// The Autobahn replica's half of the staged ingress pipeline: Node
// implements runtime.PreVerifier by composing the lane and consensus
// pre-verifiers, so the transport can check every inbound signature on a
// parallel worker stage before the message reaches the single-threaded
// event loop. All three share one crypto.VerifyCache with the state
// machines, which makes the inline re-checks constant-time memo lookups.

var _ runtime.PreVerifier = (*Node)(nil)

// PreVerify checks m's signatures without touching protocol state. Safe
// for concurrent use; called by the transport's verification workers.
func (n *Node) PreVerify(from types.NodeID, m types.Message) error {
	if !n.cfg.VerifySigs {
		return nil
	}
	switch msg := m.(type) {
	case *types.Proposal, *types.Vote, *types.PoA:
		return n.lanePV.PreVerify(from, m)
	case *types.SyncReply:
		// Bulk sync replies are the pipeline's best case: one batch call
		// covers every carried proposal (and parent PoA shares), spreading
		// an entire catch-up chunk's curve arithmetic across cores.
		bv := crypto.NewBatchVerifier(n.verifier)
		for _, p := range msg.Proposals {
			if err := lane.CollectProposalSigs(n.cfg.Committee, bv, p); err != nil {
				return err
			}
		}
		return bv.Verify()
	case *types.CommitReply:
		for i := range msg.Notices {
			if err := n.consPV.PreVerify(from, &msg.Notices[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		return n.consPV.PreVerify(from, m)
	}
}

// PreVerifyStats exposes the verified-signature memo's counters (zero
// when signature verification is off or the suite has no cache).
func (n *Node) PreVerifyStats() (hits, misses uint64) {
	if n.vcache == nil {
		return 0, 0
	}
	return n.vcache.Stats()
}
