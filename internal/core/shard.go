// Sharded data plane (runtime.Sharder implementation): Autobahn's §4
// architecture makes data dissemination embarrassingly parallel per lane,
// and this file exploits that on multi-core replicas. Lane traffic —
// cars, lane votes, PoAs, sync requests and sync payloads — is routed by
// the transport loop to W worker shards (lane i → shard i mod W, so each
// lane's FIFO order is preserved by construction), while consensus,
// certificates, commit notices, ordering and timers stay on the single
// serialized control loop.
//
// Ownership is strict: shard i alone touches the peer-lane views of its
// lanes (and, for the shard owning this replica's own lane, the own-lane
// production state); the control plane alone touches the consensus
// engine, orderer, fetcher and reputation. The only shared mutable
// structures are the proposal store and the journal, both internally
// synchronized. Everything else crosses the boundary by message passing
// over the normal delivery path, as self-addressed MsgInternal notices:
//
//	shard → control: laneNotice (new certified/optimistic tips, data
//	                 arrival, detected gaps, reputation events),
//	                 ownTipNotice (own-lane tip advancement),
//	                 syncDone (fetch bookkeeping for an ingested reply)
//	control → shard: frontierMsg (committed frontier adoption + GC),
//	                 retxMsg (car-retransmit tick)
//
// The control plane keeps its own snapshot of every lane's tips (the
// tipTable), updated exclusively from these notices, and assembles
// consensus cuts from it — so the consensus engine never reads
// shard-owned lane state. Notices are coalesced per shard burst (one
// laneNotice per lane per FlushShard) to keep the control loop's event
// rate independent of the data rate.
//
// With Config.Shards <= 1 none of this is active and the node behaves
// exactly as the classic single-threaded protocol — the discrete-event
// simulator always runs in that mode.
package core

import (
	"repro/internal/fetch"
	"repro/internal/lane"
	"repro/internal/runtime"
	"repro/internal/types"
)

// --- internal handoff messages (never encoded, self-addressed only) ---

// laneNotice carries one lane's data-plane progress from its shard to
// the control plane.
type laneNotice struct {
	lane types.NodeID
	// cert/opt are the lane's tip snapshots at flush time (cert carries a
	// real PoA or is genesis).
	cert, opt types.TipRef
	// votedPos is the highest contiguous voted position — outstanding
	// fetches at or below it are moot.
	votedPos types.Pos
	// dataArrived reports that at least one proposal was ingested (vote
	// retries, execution draining and coverage may all be unblocked).
	dataArrived bool
	// certAdvanced reports a standalone PoA advanced the lane's certified
	// tip without any data arriving (idle-lane certification): the
	// consensus engine must still be poked, as the classic path does.
	certAdvanced bool
	// hasGap reports a buffered out-of-order proposal; [gapFrom, gapTo]
	// anchored at gapAnchor is the missing range to fetch.
	hasGap         bool
	gapFrom, gapTo types.Pos
	gapAnchor      types.TipRef
	// repPenalties counts critical-path tip syncs served during the burst
	// (§B.1): the control plane downgrades the lane's reputation once per
	// served sync, exactly as the classic path does.
	repPenalties int
}

func (*laneNotice) Type() types.MsgType { return types.MsgInternal }
func (*laneNotice) WireSize() int       { return 0 }

// ownTipNotice carries the own lane's tip advancement (new proposal or
// completed PoA) from the own-lane shard to the control plane.
type ownTipNotice struct {
	tip, cert types.TipRef
}

func (*ownTipNotice) Type() types.MsgType { return types.MsgInternal }
func (*ownTipNotice) WireSize() int       { return 0 }

// syncDone forwards an ingested sync reply to the control plane for
// fetch-manager bookkeeping (the proposals themselves were already fed
// into lane state on the shard).
type syncDone struct {
	from types.NodeID
	rep  *types.SyncReply
}

func (*syncDone) Type() types.MsgType { return types.MsgInternal }
func (*syncDone) WireSize() int       { return 0 }

// frontierMsg tells a lane's shard that the lane committed through
// (pos, digest): vote-frontier adoption and fork GC (§A.4).
type frontierMsg struct {
	lane   types.NodeID
	pos    types.Pos
	digest types.Digest
}

func (*frontierMsg) Type() types.MsgType { return types.MsgInternal }
func (*frontierMsg) WireSize() int       { return 0 }

// retxMsg forwards the car-retransmit tick to the own-lane shard.
type retxMsg struct{}

func (*retxMsg) Type() types.MsgType { return types.MsgInternal }
func (*retxMsg) WireSize() int       { return 0 }

// --- control-plane tip snapshot ---

// tipTable is the control plane's view of every lane's tips, fed only by
// shard notices (so cut assembly never reads shard-owned state). Tips
// advance monotonically; certified entries always carry a real PoA.
type tipTable struct {
	cert, opt       []types.TipRef
	ownTip, ownCert types.TipRef
}

func newTipTable(n int, self types.NodeID) *tipTable {
	t := &tipTable{cert: make([]types.TipRef, n), opt: make([]types.TipRef, n)}
	for i := range t.cert {
		t.cert[i] = types.TipRef{Lane: types.NodeID(i)}
		t.opt[i] = types.TipRef{Lane: types.NodeID(i)}
	}
	t.ownTip = types.TipRef{Lane: self}
	t.ownCert = types.TipRef{Lane: self}
	return t
}

func (t *tipTable) updateLane(l types.NodeID, cert, opt types.TipRef) {
	if cert.Cert != nil && cert.Position > t.cert[l].Position {
		t.cert[l] = cert
	}
	if opt.Position > t.opt[l].Position {
		t.opt[l] = opt
	}
}

// assemble mirrors lane.State.AssembleCutFunc over the snapshot.
func (t *tipTable) assemble(self types.NodeID, optimisticFor func(types.NodeID) bool) types.Cut {
	tips := make([]types.TipRef, len(t.cert))
	for i := range tips {
		l := types.NodeID(i)
		switch {
		case l == self:
			// Leader-tip rule (§5.5.2): the own lane may be referenced
			// uncertified — the proposer only hurts itself by lying.
			if t.ownTip.Position > t.ownCert.Position {
				tips[i] = t.ownTip
			} else {
				tips[i] = t.ownCert
			}
		case optimisticFor(l):
			if t.opt[i].Position > t.cert[i].Position {
				tips[i] = t.opt[i]
			} else {
				tips[i] = t.cert[i]
			}
		default:
			tips[i] = t.cert[i]
		}
	}
	return types.Cut{Tips: tips}
}

// --- per-shard worker state ---

// shardState is the data owned by one shard worker: its gated sends
// (group commit) and its coalesced, not-yet-flushed control notices.
// Only that worker's goroutine touches it (the classic single-threaded
// fallback in OnMessage runs on the control goroutine, which under an
// unsharded runtime is the only goroutine).
type shardState struct {
	n   *Node
	idx int

	gate    gatedContext
	pending []pendingSend

	// Coalesced per-burst notices: one laneNotice per lane, merged across
	// the burst's events, flushed (and tip snapshots taken) in FlushShard.
	notices  map[types.NodeID]*laneNotice
	order    []types.NodeID // deterministic flush order
	ownDirty bool

	// lastRetxPos tracks the outstanding own car seen at the previous
	// retransmit tick (own-lane shard only).
	lastRetxPos types.Pos
}

// wrap installs group-commit gating around ctx for the duration of one
// shard event handler, mirroring Node.enter for the control loop.
func (sh *shardState) wrap(ctx runtime.Context) runtime.Context {
	if !sh.n.cfg.GroupCommit {
		return ctx
	}
	sh.gate.inner = ctx
	sh.gate.pending = &sh.pending
	return &sh.gate
}

// note returns (creating if needed) the coalesced notice for a lane.
func (sh *shardState) note(l types.NodeID) *laneNotice {
	if no, ok := sh.notices[l]; ok {
		return no
	}
	no := &laneNotice{lane: l}
	sh.notices[l] = no
	sh.order = append(sh.order, l)
	return no
}

// --- runtime.Sharder implementation on Node ---

var _ runtime.Sharder = (*Node)(nil)

// DataShards implements runtime.Sharder.
func (n *Node) DataShards() int { return n.cfg.Shards }

// BatchShard implements runtime.Sharder: client batches go to the shard
// owning this replica's own lane (car production is serial per lane).
func (n *Node) BatchShard() int {
	if !n.sharded {
		return -1
	}
	return int(n.cfg.Self) % n.cfg.Shards
}

// ShardOf implements runtime.Sharder: data-plane traffic is owned by its
// lane's shard; everything else (consensus, commit catch-up, internal
// control notices) is control.
func (n *Node) ShardOf(_ types.NodeID, m types.Message) int {
	if !n.sharded {
		return -1
	}
	w := n.cfg.Shards
	switch v := m.(type) {
	case *types.Proposal:
		return int(v.Lane) % w
	case *types.Vote:
		return int(v.Lane) % w // votes address the lane owner (us)
	case *types.PoA:
		return int(v.Lane) % w
	case *types.SyncRequest:
		return int(v.Lane) % w // serving reads only the (shared) store
	case *types.SyncReply:
		return int(v.Lane) % w
	case *frontierMsg:
		return int(v.lane) % w
	case *retxMsg:
		return n.BatchShard()
	default:
		return -1
	}
}

// OnShardMessage implements runtime.Sharder: one data-plane event on its
// owning shard's worker goroutine.
func (n *Node) OnShardMessage(ctx runtime.Context, shard int, from types.NodeID, m types.Message) {
	sh := n.shards[shard]
	ctx = sh.wrap(ctx)
	switch msg := m.(type) {
	case *types.Proposal:
		sh.handleProposal(ctx, msg, true)
	case *types.Vote:
		sh.handleVote(ctx, msg)
	case *types.PoA:
		if err := n.lanes.OnPoA(msg); err == nil {
			if msg.Lane == n.cfg.Self {
				sh.ownDirty = true
			} else {
				sh.note(msg.Lane).certAdvanced = true
			}
		}
	case *types.SyncRequest:
		sh.serveSync(ctx, msg)
	case *types.SyncReply:
		sh.handleSyncReply(ctx, from, msg)
	case *frontierMsg:
		// An own-lane frontier rides to the own-lane shard (ShardOf keys
		// on the lane), where retiring commit-overtaken outstanding cars
		// may unblock fresh proposals — broadcast them from here, exactly
		// as handleVote does on this shard.
		for _, p := range n.lanes.OnCommitted(msg.lane, msg.pos, msg.digest) {
			n.stats.BatchesProposed.Add(1)
			ctx.Broadcast(p)
			sh.ownDirty = true
		}
	case *retxMsg:
		sh.retransmit(ctx)
	}
}

// OnShardBatch implements runtime.Sharder: own-lane car production.
func (n *Node) OnShardBatch(ctx runtime.Context, shard int, b *types.Batch) {
	sh := n.shards[shard]
	ctx = sh.wrap(ctx)
	if p := n.lanes.AddBatch(b); p != nil {
		n.stats.BatchesProposed.Add(1)
		ctx.Broadcast(p)
		sh.ownDirty = true
	}
}

// FlushShard implements runtime.Sharder: the per-shard burst barrier.
// Order matters — journal sync first (write-before-externalize), then
// the burst's gated sends, then the coalesced control notices (whose tip
// snapshots are taken now, after every event of the burst applied).
func (n *Node) FlushShard(ctx runtime.Context, shard int) {
	sh := n.shards[shard]
	if n.cfg.GroupCommit {
		// A failed barrier is replica-fatal, exactly as in Flush: this
		// shard's gated sends are dropped, never released.
		if err := n.cfg.Journal.Sync(); err != nil {
			n.fatal(err)
		}
	}
	if n.halted.Load() {
		n.dropPending(&sh.pending)
		return
	}
	if len(sh.pending) > 0 {
		pend := sh.pending
		sh.pending = sh.pending[:0]
		for i := range pend {
			if pend[i].broadcast {
				ctx.Broadcast(pend[i].msg)
			} else {
				ctx.Send(pend[i].to, pend[i].msg)
			}
			pend[i] = pendingSend{}
		}
	}
	sh.flushNotices(ctx)
}

// flushNotices snapshots tips and hands the burst's coalesced notices to
// the control plane (self-addressed sends short-circuit in every mesh).
func (sh *shardState) flushNotices(ctx runtime.Context) {
	n := sh.n
	for _, l := range sh.order {
		no := sh.notices[l]
		delete(sh.notices, l)
		no.cert = n.lanes.CertifiedTip(l)
		no.opt = n.lanes.OptimisticTip(l)
		ctx.Send(n.cfg.Self, no)
	}
	sh.order = sh.order[:0]
	if sh.ownDirty {
		sh.ownDirty = false
		ctx.Send(n.cfg.Self, &ownTipNotice{
			tip:  n.lanes.OptimisticTip(n.cfg.Self),
			cert: n.lanes.CertifiedTip(n.cfg.Self),
		})
	}
}

// --- shard-side handlers (mirrors of the classic control handlers,
//     minus every touch of control-owned state) ---

// handleProposal ingests a car on its lane's shard: FIFO votes go out
// directly; consensus-side consequences (fetch cancellation, vote
// retries, execution draining, gap fetches) ride the coalesced notice.
func (sh *shardState) handleProposal(ctx runtime.Context, p *types.Proposal, live bool) {
	n := sh.n
	if p.Lane == n.cfg.Self {
		// Own-lane sync delivery (amnesia catch-up / lost self-fork): it
		// routes to the own-lane shard (ShardOf keys on the lane), so the
		// production state read in flushNotices stays shard-owned; the
		// ingest itself is store-only. dataArrived makes the control plane
		// re-drain execution, which is what the data was fetched for.
		if !live && n.lanes.IngestOwn(p) == nil {
			sh.note(p.Lane).dataArrived = true
		}
		return
	}
	votes, err := n.lanes.OnProposal(p)
	for _, v := range votes {
		n.stats.VotesSent.Add(1)
		ctx.Send(p.Lane, v)
	}
	no := sh.note(p.Lane)
	if err == lane.ErrMissingParent && live && !no.hasGap {
		if from, to, anchor, ok := n.lanes.BufferedGap(p.Lane); ok {
			no.hasGap = true
			no.gapFrom, no.gapTo, no.gapAnchor = from, to, anchor
		}
	}
	if err == nil || err == lane.ErrMissingParent {
		no.dataArrived = true
		no.votedPos = n.lanes.VotedPos(p.Lane)
	}
}

// handleVote processes a vote for an own car on the own-lane shard.
func (sh *shardState) handleVote(ctx runtime.Context, v *types.Vote) {
	n := sh.n
	props, poa, err := n.lanes.OnVote(v)
	if err != nil {
		return
	}
	for _, p := range props {
		n.stats.BatchesProposed.Add(1)
		ctx.Broadcast(p)
	}
	if poa != nil {
		ctx.Broadcast(poa)
	}
	if len(props) > 0 || poa != nil {
		sh.ownDirty = true
	}
}

// serveSync serves lane history straight off the shard — the multi-MB
// reply encoding this triggers in the mesh runs here too, not on the
// control loop. Reputation consequences hand off to control.
func (sh *shardState) serveSync(ctx runtime.Context, req *types.SyncRequest) {
	n := sh.n
	if n.cfg.Reputation && req.From == req.To && req.Lane != n.cfg.Self {
		sh.note(req.Lane).repPenalties++
	}
	for _, rep := range fetch.Serve(n.lanes.Store(), req) {
		n.stats.SyncRepliesServed.Add(1)
		ctx.Send(req.Requester, rep)
	}
}

// handleSyncReply ingests a sync reply's proposals into lane state on
// the shard (votes, buffering, store) and forwards the reply envelope to
// the control plane, where the fetch manager reconciles it against its
// outstanding requests and execution resumes.
//
// Chain validation runs FIRST, on the shard: beyond matching the
// classic path (which only ever ingested chain-valid replies), it is a
// shard-safety requirement — a hostile reply mixing lanes would
// otherwise make this worker touch peer-lane state owned by another
// shard. Invalid replies are dropped whole; the outstanding fetch
// retries from its tick, exactly as before.
func (sh *shardState) handleSyncReply(ctx runtime.Context, from types.NodeID, rep *types.SyncReply) {
	if err := fetch.ValidateChain(rep); err != nil {
		return
	}
	for _, p := range rep.Proposals {
		if p.Lane != rep.Lane {
			return // unreachable after ValidateChain; defense in depth
		}
		sh.handleProposal(ctx, p, false)
	}
	ctx.Send(sh.n.cfg.Self, &syncDone{from: from, rep: rep})
}

// retransmit re-broadcasts the oldest outstanding own car if it is still
// stuck a full tick later (control forwards the timer here because the
// outstanding-car state is shard-owned).
func (sh *shardState) retransmit(ctx runtime.Context) {
	n := sh.n
	if p := n.lanes.OldestOutstanding(); p != nil {
		if p.Position == sh.lastRetxPos {
			ctx.Broadcast(p)
		}
		sh.lastRetxPos = p.Position
	} else {
		sh.lastRetxPos = 0
	}
}

// --- control-side notice handlers ---

// onLaneNotice applies one lane's shard progress to control state.
func (n *Node) onLaneNotice(ctx runtime.Context, msg *laneNotice) {
	n.tips.updateLane(msg.lane, msg.cert, msg.opt)
	if msg.repPenalties > 0 && n.cfg.Reputation {
		n.reputation[msg.lane] -= repPenalty * msg.repPenalties
		if n.reputation[msg.lane] < 0 {
			n.reputation[msg.lane] = 0
		}
	}
	if msg.dataArrived {
		// Data arrival can unblock pending consensus votes and execution,
		// and new certified tips advance coverage — same consequences the
		// classic handler applies inline.
		n.fetcher.Cancel(msg.lane, msg.votedPos)
		n.engine.OnTipsAdvanced()
		n.retryPendingVotes()
		n.drainExecution(ctx)
	} else if msg.certAdvanced {
		// Standalone PoA on an otherwise idle lane: the certified tip
		// moved, so coverage may have (the classic PoA handler pokes the
		// engine unconditionally).
		n.engine.OnTipsAdvanced()
	}
	if msg.hasGap {
		n.scheduleGapFetchAt(ctx, msg.lane, msg.gapFrom, msg.gapTo, msg.gapAnchor)
	}
}

// onSyncDone reconciles a shard-ingested sync reply with the fetch
// manager: remainder chasing, tip-vote unblocking, execution draining.
// The proposals themselves are already in the store.
func (n *Node) onSyncDone(ctx runtime.Context, msg *syncDone) {
	res, err := n.fetcher.OnReply(ctx.Now(), msg.from, msg.rep)
	if err == fetch.ErrUnsolicited {
		// Late reply to an abandoned request: already ingested on the
		// shard; execution may still be waiting on the data.
		n.drainExecution(ctx)
		return
	}
	if err != nil || res == nil {
		return
	}
	if res.Remainder != nil {
		rm := res.Remainder.Msg
		if n.lanes.Store().Has(rm.Lane, rm.To, rm.TipDigest) {
			n.fetcher.Cancel(rm.Lane, rm.To)
		} else {
			n.stats.SyncRequestsSent.Add(1)
			ctx.Send(res.Remainder.To, res.Remainder.Msg)
		}
	}
	if res.Request.Purpose == fetch.PurposeTipVote {
		n.engine.TipDataArrived(res.Request.Slot, res.Request.View)
	}
	n.drainExecution(ctx)
}
