package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// TestLinkFaultsDeterministic: one seed, one decision sequence — the
// fault matrix must be reproducible run to run.
func TestLinkFaultsDeterministic(t *testing.T) {
	mk := func() []verdict {
		f := NewLinkFaults(42).SetAll(LinkRule{DropP: 0.3, DupP: 0.2, Delay: time.Millisecond, Jitter: 5 * time.Millisecond})
		out := make([]verdict, 200)
		for i := range out {
			out[i] = f.decide(1, PlaneData)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLinkFaultsRules: per-link rules override the default, zero rules
// inject nothing, and the counters observe what was injected.
func TestLinkFaultsRules(t *testing.T) {
	f := NewLinkFaults(7).SetAll(LinkRule{DropP: 1})
	f.SetRule(2, PlaneControl, LinkRule{}) // clean control link to 2

	for i := 0; i < 50; i++ {
		if v := f.decide(1, PlaneData); !v.drop {
			t.Fatal("DropP=1 link delivered a frame")
		}
		if v := f.decide(2, PlaneControl); v.drop || v.copies != 1 || v.delay != 0 {
			t.Fatalf("clean link injected faults: %+v", v)
		}
	}
	if s := f.Stats(); s.Dropped != 50 {
		t.Fatalf("dropped counter = %d, want 50", s.Dropped)
	}

	dup := NewLinkFaults(7).SetAll(LinkRule{DupP: 1, Delay: 2 * time.Millisecond})
	v := dup.decide(0, PlaneData)
	if v.drop || v.copies != 2 || v.delay != 2*time.Millisecond {
		t.Fatalf("dup+delay verdict: %+v", v)
	}
	if s := dup.Stats(); s.Duplicated != 1 || s.Delayed != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// TestLinkFaultsConcurrent: decisions race from every sender goroutine
// in a real mesh; the injector must tolerate that (run with -race).
func TestLinkFaultsConcurrent(t *testing.T) {
	f := NewLinkFaults(3).SetAll(LinkRule{DropP: 0.5, DupP: 0.5, Jitter: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.decide(types.NodeID(g%4), i%planeCount)
			}
		}(g)
	}
	wg.Wait()
	s := f.Stats()
	if s.Dropped == 0 || s.Duplicated == 0 {
		t.Fatalf("expected faults under p=0.5: %+v", s)
	}
}
