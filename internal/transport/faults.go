package transport

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// LinkRule describes the fault profile of one directed peer link (per
// plane): each outbound frame is independently dropped, duplicated and/or
// delayed. Reordering emerges from randomized per-frame delay — a frame
// delayed by more than the gap to its successor arrives after it.
type LinkRule struct {
	// DropP is the probability [0,1] a frame is silently discarded.
	DropP float64
	// DupP is the probability [0,1] a frame is transmitted twice.
	DupP float64
	// Delay is a fixed extra latency added to every frame.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per frame;
	// any Jitter larger than the inter-frame gap reorders traffic.
	Jitter time.Duration
}

// Zero reports whether the rule injects nothing.
func (r LinkRule) Zero() bool {
	return r.DropP <= 0 && r.DupP <= 0 && r.Delay <= 0 && r.Jitter <= 0
}

// LinkFaultStats counts injected faults (observability for tests and the
// fault-matrix harness).
type LinkFaultStats struct {
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
}

// LinkFaults injects transport-level faults — drop, delay, duplicate,
// reorder, per peer and priority plane — into a real-time mesh's egress
// (TCPMesh.SetLinkFaults, LocalMesh.Faults). It models the lossy,
// reordering network the paper's seamlessness claim must survive, and
// composes with protocol-level Byzantine behaviors (internal/adversary):
// behaviors decide WHAT a replica sends, LinkFaults decides what the
// network DOES to it.
//
// Rules are consulted on the sender's hot path, so decisions are a single
// mutex-guarded PRNG draw; delayed frames re-enter the mesh from a timer
// goroutine (exactly how a real network hands late packets back). Safe
// for concurrent use.
type LinkFaults struct {
	mu    sync.Mutex
	rng   *rand.Rand
	all   LinkRule
	rules map[linkKey]LinkRule

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	delayed    atomic.Uint64
}

type linkKey struct {
	to    types.NodeID
	plane int
}

// NewLinkFaults builds an injector with no rules; seed drives every
// probabilistic decision.
func NewLinkFaults(seed uint64) *LinkFaults {
	return &LinkFaults{
		rng:   rand.New(rand.NewPCG(seed, seed^0xabcdef12345)),
		rules: make(map[linkKey]LinkRule),
	}
}

// SetAll installs a default rule applied to every peer and plane that has
// no more specific rule.
func (f *LinkFaults) SetAll(r LinkRule) *LinkFaults {
	f.mu.Lock()
	f.all = r
	f.mu.Unlock()
	return f
}

// SetRule installs a rule for one directed peer link and plane
// (PlaneControl or PlaneData), overriding the SetAll default.
func (f *LinkFaults) SetRule(to types.NodeID, plane int, r LinkRule) *LinkFaults {
	f.mu.Lock()
	f.rules[linkKey{to, plane}] = r
	f.mu.Unlock()
	return f
}

// Exported plane selectors for rule targeting (values match the mesh's
// internal plane indices).
const (
	PlaneControl = planeControl
	PlaneData    = planeData
)

// Stats snapshots the injected-fault counters.
func (f *LinkFaults) Stats() LinkFaultStats {
	return LinkFaultStats{
		Dropped:    f.dropped.Load(),
		Duplicated: f.duplicated.Load(),
		Delayed:    f.delayed.Load(),
	}
}

// verdict is one frame's fate: drop, or deliver `copies` times after
// `delay`.
type verdict struct {
	drop   bool
	copies int
	delay  time.Duration
}

// decide rolls one frame's fate for the given link.
func (f *LinkFaults) decide(to types.NodeID, plane int) verdict {
	f.mu.Lock()
	r, ok := f.rules[linkKey{to, plane}]
	if !ok {
		r = f.all
	}
	if r.Zero() {
		f.mu.Unlock()
		return verdict{copies: 1}
	}
	v := verdict{copies: 1}
	if r.DropP > 0 && f.rng.Float64() < r.DropP {
		v.drop = true
		f.mu.Unlock()
		f.dropped.Add(1)
		return v
	}
	if r.DupP > 0 && f.rng.Float64() < r.DupP {
		v.copies = 2
	}
	v.delay = r.Delay
	if r.Jitter > 0 {
		v.delay += time.Duration(f.rng.Int64N(int64(r.Jitter)))
	}
	f.mu.Unlock()
	if v.copies > 1 {
		f.duplicated.Add(1)
	}
	if v.delay > 0 {
		f.delayed.Add(1)
	}
	return v
}
