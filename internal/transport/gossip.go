package transport

import (
	"math/rand/v2"
	"sort"
	"sync"

	"repro/internal/types"
)

// Gossip car dissemination. Full-mesh broadcast of cars costs every
// replica O(n·payload) egress per car it originates — the data-plane
// bill that dominates at large committees. With gossip enabled, the
// origin sends each car to a random fanout-k sample of peers, and every
// replica relays a car exactly once (on first sight, to a fresh random
// sample that excludes the sender, the origin and itself). Expected
// per-replica data-plane egress drops to O(k·payload) while the relay
// graph — a random k-out digraph re-sampled per car — reaches all n
// replicas with overwhelming probability for k ≥ ~log n.
//
// Delivery is probabilistic, not guaranteed, and the protocol already
// tolerates that: the lane layer's car-retransmission timer re-gossips
// an uncertified tip to a fresh sample each tick, and the gap/execute
// sync paths fetch anything a cut references that never arrived. Those
// are the liveness backstops; gossip only needs to make them rare.
//
// Only cars (MsgProposal) gossip. PoA votes, consensus traffic and sync
// replies stay point-to-point on their usual planes: they are small,
// latency-critical, and their recipients are determined by the protocol
// rather than by coverage.
//
// Relaying happens after dedup but before signature verification: a
// forged car costs the network k extra copies per first-sight hop
// before the verifier kills it at every honest replica. That bounded
// amplification (the standard gossip trade-off) buys cut-through
// latency — a car crosses the network in hash-check time per hop, not
// signature-check time.
type gossipState struct {
	mu     sync.Mutex
	fanout int
	rng    *rand.Rand
	// Two-generation seen-set over car digests (same scheme as
	// crypto.VerifyCache): inserts go to young; when young fills, old is
	// discarded and young becomes old. Bounded memory, and an entry
	// survives at least `cap` and at most 2·`cap` distinct inserts —
	// far longer than any duplicate window the retransmission timer or
	// link-fault duplication can produce.
	young, old map[types.Digest]struct{}
	cap        int
}

func newGossipState(fanout int, seed uint64) *gossipState {
	const defaultCap = 1 << 14
	return &gossipState{
		fanout: fanout,
		rng:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		young:  make(map[types.Digest]struct{}, defaultCap),
		old:    make(map[types.Digest]struct{}),
		cap:    defaultCap,
	}
}

// firstSeen reports whether d is new, marking it seen.
func (g *gossipState) firstSeen(d types.Digest) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.young[d]; ok {
		return false
	}
	if _, ok := g.old[d]; ok {
		return false
	}
	if len(g.young) >= g.cap {
		g.old = g.young
		g.young = make(map[types.Digest]struct{}, g.cap)
	}
	g.young[d] = struct{}{}
	return true
}

// sample picks up to fanout distinct peers from candidates, excluding
// any ID for which skip returns true. candidates is never mutated.
func (g *gossipState) sample(candidates []types.NodeID, skip func(types.NodeID) bool) []types.NodeID {
	eligible := make([]types.NodeID, 0, len(candidates))
	for _, id := range candidates {
		if !skip(id) {
			eligible = append(eligible, id)
		}
	}
	k := g.fanout
	if k >= len(eligible) {
		return eligible
	}
	// Partial Fisher-Yates: k draws, O(k), unbiased.
	g.mu.Lock()
	for i := 0; i < k; i++ {
		j := i + int(g.rng.IntN(len(eligible)-i))
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	g.mu.Unlock()
	return eligible[:k]
}

// sortedPeers returns the committee IDs in addrs except self, sorted —
// the stable candidate list gossip samples from.
func sortedPeers(addrs map[types.NodeID]string, self types.NodeID) []types.NodeID {
	peers := make([]types.NodeID, 0, len(addrs))
	for id := range addrs {
		if id != self {
			peers = append(peers, id)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}
