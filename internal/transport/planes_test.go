package transport

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

func TestPlaneClassification(t *testing.T) {
	data := []types.MsgType{types.MsgProposal, types.MsgSyncReply, types.MsgCommitReply}
	for _, mt := range data {
		if planeOf(mt) != planeData {
			t.Fatalf("type %d should ride the data plane", mt)
		}
	}
	control := []types.MsgType{
		types.MsgVote, types.MsgPoA, types.MsgPrepare, types.MsgPrepVote,
		types.MsgConfirm, types.MsgConfirmAck, types.MsgCommitNotice,
		types.MsgTimeout, types.MsgSyncRequest, types.MsgCommitRequest,
	}
	for _, mt := range control {
		if planeOf(mt) != planeControl {
			t.Fatalf("type %d should ride the control plane", mt)
		}
	}
}

// orderCollector records the arrival order of proposals vs votes.
type orderCollector struct {
	mu      sync.Mutex
	arrived []types.MsgType
}

func (c *orderCollector) Init(runtime.Context) {}
func (c *orderCollector) OnMessage(_ runtime.Context, _ types.NodeID, m types.Message) {
	c.mu.Lock()
	c.arrived = append(c.arrived, m.Type())
	c.mu.Unlock()
}
func (c *orderCollector) OnTimer(runtime.Context, runtime.TimerTag)   {}
func (c *orderCollector) OnClientBatch(runtime.Context, *types.Batch) {}

func (c *orderCollector) snapshot() []types.MsgType {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]types.MsgType(nil), c.arrived...)
}

// TestControlOvertakesSaturatedDataPlane floods the data plane with
// multi-megabyte cars, then sends consensus votes: the votes must arrive
// while most of the bulk backlog is still in flight, i.e. the control
// plane is not head-of-line-blocked by data. Run under -race this also
// exercises the pooled frame lifecycle across both writer goroutines.
func TestControlOvertakesSaturatedDataPlane(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	recv := &orderCollector{}
	ma := NewTCPMesh(0, addrs, &collector{}, epoch, nil)
	mb := NewTCPMesh(1, addrs, recv, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	// Saturate the data plane: 64 cars of 4 MB each (256 MB total).
	const cars = 64
	car := types.NewBatch(0, 1, []types.Transaction{make(types.Transaction, 4<<20)}, 0)
	for i := 0; i < cars; i++ {
		p := &types.Proposal{Lane: 0, Position: types.Pos(i + 1), Batch: car, Sig: make([]byte, 64)}
		ma.Send(0, 1, p)
	}
	// Cars the link drained while the loop above was still encoding say
	// nothing about head-of-line blocking — the votes did not exist yet.
	// Snapshot the prefix and measure the overtake against the backlog
	// that was actually in flight when the votes were enqueued. (Under
	// the race detector, encoding 256 MB is slow enough that the drained
	// prefix is large, and an absolute threshold measured the test's own
	// enqueue speed instead of plane priority.)
	predelivered := len(recv.snapshot())
	const votes = 8
	for i := 0; i < votes; i++ {
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: types.Pos(i + 1), Voter: 0, Sig: make([]byte, 64)})
	}

	waitFor(t, func() bool {
		n := 0
		for _, mt := range recv.snapshot() {
			if mt == types.MsgVote {
				n++
			}
		}
		return n == votes
	}, "all votes delivered")

	order := recv.snapshot()
	lastVote := -1
	proposalsBeforeLastVote := 0
	for i, mt := range order {
		if mt == types.MsgVote {
			lastVote = i
			proposalsBeforeLastVote = i + 1 - countVotes(order[:i+1])
		}
	}
	// With a single shared queue, the whole backlog (minus drops) drains
	// before the first vote. With plane separation the votes must beat
	// the bulk of the cars still in flight when they were enqueued;
	// allow a generous margin for writev interleaving on loopback.
	backlog := cars - predelivered
	overtaken := proposalsBeforeLastVote - predelivered
	if backlog < 8 {
		t.Skipf("link drained %d of %d cars before the votes existed: no backlog to measure against", predelivered, cars)
	}
	if overtaken > backlog/2 {
		t.Fatalf("votes arrived after %d of %d in-flight cars: control plane is blocked behind data (last vote at index %d, %d cars predelivered)",
			overtaken, backlog, lastVote, predelivered)
	}
	t.Logf("last vote overtook %d of %d in-flight cars (arrived at index %d, %d predelivered)",
		backlog-overtaken, backlog, lastVote, predelivered)
}

func countVotes(order []types.MsgType) int {
	n := 0
	for _, mt := range order {
		if mt == types.MsgVote {
			n++
		}
	}
	return n
}

// TestEgressCoalescingCounters pins the coalescing machinery: a burst of
// frames enqueued while the peer link is still dialing must reach the
// peer in fewer flushes than frames.
func TestEgressCoalescingCounters(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	recv := &orderCollector{}
	ma := NewTCPMesh(0, addrs, &collector{}, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()

	// Enqueue a burst before the peer exists: all frames pile up in the
	// control queue and must go out in coalesced writev batches once the
	// peer appears.
	const burst = 200
	for i := 0; i < burst; i++ {
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: types.Pos(i + 1), Voter: 0, Sig: make([]byte, 64)})
	}
	mb := NewTCPMesh(1, addrs, recv, epoch, nil)
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	waitFor(t, func() bool { return len(recv.snapshot()) == burst }, "burst delivered")
	st := ma.PeerStats()[1]
	if st.Control.Frames != burst {
		t.Fatalf("control frames = %d, want %d", st.Control.Frames, burst)
	}
	if st.Control.Flushes == 0 || st.Control.Flushes >= st.Control.Frames {
		t.Fatalf("flushes = %d for %d frames: no coalescing happened", st.Control.Flushes, st.Control.Frames)
	}
	if st.Control.Bytes == 0 {
		t.Fatal("no bytes counted")
	}
	t.Logf("%d frames in %d flushes (%.1f frames/syscall)", st.Control.Frames, st.Control.Flushes,
		float64(st.Control.Frames)/float64(st.Control.Flushes))

	// The receiving side counts inbound frames too.
	rs := mb.PeerStats()[0]
	if rs.RecvFrames != burst {
		t.Fatalf("recv frames = %d, want %d", rs.RecvFrames, burst)
	}
}

// TestVoteLatencyUnderDataSaturation measures consensus-vote round-trip
// p99 while the data plane continuously streams 4 MB cars, the
// seamlessness property the control plane exists for. The assertion is
// deliberately loose (CI containers are slow); EXPERIMENTS.md records
// measured numbers.
func TestVoteLatencyUnderDataSaturation(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	recv := &orderCollector{}
	ma := NewTCPMesh(0, addrs, &collector{}, epoch, nil)
	mb := NewTCPMesh(1, addrs, recv, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // data-plane saturator
		defer wg.Done()
		car := types.NewBatch(0, 1, []types.Transaction{make(types.Transaction, 4<<20)}, 0)
		pos := types.Pos(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ma.Send(0, 1, &types.Proposal{Lane: 0, Position: pos, Batch: car, Sig: make([]byte, 64)})
			pos++
		}
	}()

	time.Sleep(100 * time.Millisecond) // let the data plane saturate
	const probes = 50
	lats := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		before := countVotes(recv.snapshot())
		start := time.Now()
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: types.Pos(i + 1), Voter: 0, Sig: make([]byte, 64)})
		waitFor(t, func() bool { return countVotes(recv.snapshot()) > before }, "vote under saturation")
		lats = append(lats, time.Since(start))
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := lats[len(lats)/2], lats[len(lats)*99/100]
	t.Logf("vote latency under 4MB-car saturation: p50=%v p99=%v", p50, p99)
	if p99 > 2*time.Second {
		t.Fatalf("vote p99 %v under data saturation: control plane not isolated", p99)
	}
}
