package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wire"
)

// TCPMesh connects one local replica to its peers over TCP, with
// length-framed wire-encoded messages, lazy dialing and automatic
// reconnection — the stdlib equivalent of the paper's Tokio TCP stack.
//
// Egress is allocation-light and interference-free: messages are encoded
// once into pooled buffers (wire.GetBuf) and the same reference-counted
// frame is shared across a broadcast's peers; each peer link runs two
// prioritized planes over separate TCP connections — control (votes,
// consensus, certificates) and data (cars, sync payloads) — so a
// multi-megabyte car can never head-of-line-block a PrepVote; and each
// plane's writer drains its queue into a single writev-style flush
// (net.Buffers), turning many small frames into one syscall.
type TCPMesh struct {
	self  types.NodeID
	addrs map[types.NodeID]string
	loop  *Loop

	mu    sync.Mutex
	conns map[types.NodeID]*peerConn
	stats map[types.NodeID]*metrics.PeerTransport
	// inbound tracks accepted connections (keyed to the peer that
	// handshook on them; unknownPeer before the handshake) so Stop can
	// sever them all and the stall detector can sever one peer's: a
	// stopped mesh that keeps reading would silently swallow peers'
	// frames, hiding the death from their reconnection logic (and from a
	// restarted process listening on the same address).
	inbound map[net.Conn]types.NodeID

	// health tracks per-peer liveness progress (last frame received /
	// sent) for the stall detector; see stall.go.
	health map[types.NodeID]*peerHealth
	// stallTimeout > 0 arms the stall detector (SetStallTimeout).
	stallTimeout time.Duration

	listener net.Listener
	stopped  chan struct{}
	once     sync.Once
	logger   *log.Logger

	// faults, when set, injects drop/delay/duplicate/reorder per
	// peer-plane into egress (fault-matrix harness; see LinkFaults).
	faults *LinkFaults

	// gossip, when set, replaces full-mesh car broadcast with fanout-k
	// dissemination (see gossip.go); gossipPeers is the sorted committee
	// minus self that samples draw from.
	gossip      *gossipState
	gossipPeers []types.NodeID

	// deltaCuts gates the SENDER side of delta-compressed cut frames;
	// the receiver side (readLoop) is always on, so mixed deployments
	// interoperate and enabling the flag is a per-node decision.
	deltaCuts bool
}

// Priority planes. Every peer link is two TCP connections, one per
// plane, each with its own queue and writer.
const (
	planeControl = 0 // votes, consensus messages, certificates, requests
	planeData    = 1 // bulk payloads: lane proposals (cars), sync replies
	planeCount   = 2
)

// planeOf classifies a message: anything that can carry batch payloads is
// data; everything else — consensus votes, timeouts, PoA votes, sync and
// commit requests — is control and must never queue behind a car.
func planeOf(t types.MsgType) int {
	switch t {
	case types.MsgProposal, types.MsgSyncReply, types.MsgCommitReply:
		return planeData
	default:
		return planeControl
	}
}

// Per-plane queue depths. Control frames are small and must survive data
// backpressure; the data queue is shorter so a slow peer sheds bulk
// traffic (retransmission recovers) instead of buffering gigabytes.
var planeQueueDepth = [planeCount]int{planeControl: 8192, planeData: 1024}

// Coalescing limits per flush: drain the queue until either bound, then
// write the whole batch with one writev.
const (
	coalesceFrames = 64
	coalesceBytes  = 1 << 20
)

// frame is one length-prefixed encoded message. Frames are pooled and
// reference-counted: a broadcast enqueues the same frame to every peer,
// and the backing buffer returns to the wire buffer pool only after the
// last writer (or dropper) releases it.
type frame struct {
	buf  *wire.Buf // [len(4) | type | payload]
	refs atomic.Int32
	// msg/cut are set (delta-cut senders only) when the message carries
	// a cut: each plane writer then re-encodes the frame as a delta
	// against its own connection's last cut at flush time, falling back
	// to the shared full encoding in buf. Immutable once enqueued.
	msg    types.Message
	cut    types.Cut
	hasCut bool
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		f.buf.Release()
		f.buf = nil
		f.msg = nil
		f.cut = types.Cut{}
		f.hasCut = false
		framePool.Put(f)
	}
}

type stream struct {
	out   chan *frame
	plane int
	ctr   *metrics.PlaneCounters
	// health is the owning peer's liveness block (shared by both planes).
	health *peerHealth

	// connMu guards the active outbound connection, registered by
	// writeLoop for the lifetime of one streamFrames call so the stall
	// detector (and Stop) can sever it from outside — the only way to
	// unblock a writer wedged inside net.Buffers.WriteTo on a peer that
	// stopped reading.
	connMu    sync.Mutex
	conn      net.Conn
	connSince time.Time
	// writeStart is the wall-clock nanosecond a flush entered WriteTo (0
	// = no write in flight): a write blocked longer than the stall
	// timeout is the wedged-peer signature even when nothing else moves.
	writeStart atomic.Int64
}

type peerConn struct {
	streams [planeCount]*stream
}

// maxFrame bounds a single framed message, aligned with the wire codec's
// own payload cap: a frame the decoder could never accept must close the
// connection instead of allocating its claimed size.
const maxFrame = wire.MaxFrame

// NewTCPMesh builds the mesh for `self`, given every replica's address.
func NewTCPMesh(self types.NodeID, addrs map[types.NodeID]string, proto runtime.Protocol, epoch time.Time, logger *log.Logger) *TCPMesh {
	if logger == nil {
		logger = log.Default()
	}
	m := &TCPMesh{
		self:    self,
		addrs:   addrs,
		conns:   make(map[types.NodeID]*peerConn),
		stats:   make(map[types.NodeID]*metrics.PeerTransport),
		inbound: make(map[net.Conn]types.NodeID),
		health:  make(map[types.NodeID]*peerHealth),
		stopped: make(chan struct{}),
		logger:  logger,
	}
	m.loop = NewLoop(self, proto, m, epoch)
	return m
}

// Loop returns the local replica's event loop (for client submissions).
func (m *TCPMesh) Loop() *Loop { return m.loop }

// Start listens on this replica's address and launches the event loop.
func (m *TCPMesh) Start() error {
	ln, err := net.Listen("tcp", m.addrs[m.self])
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", m.addrs[m.self], err)
	}
	m.listener = ln
	go m.acceptLoop()
	go m.loop.Run()
	if m.stallTimeout > 0 {
		go m.stallMonitor()
	}
	return nil
}

// Stop closes the listener, connections (inbound and outbound) and the
// loop. Severing the registered outbound connections unblocks writers
// wedged inside a blocking WriteTo to a dead peer, which the stopped
// channel alone cannot reach.
func (m *TCPMesh) Stop() {
	m.once.Do(func() {
		close(m.stopped)
		if m.listener != nil {
			m.listener.Close()
		}
		m.mu.Lock()
		for conn := range m.inbound {
			conn.Close()
		}
		conns := make([]*peerConn, 0, len(m.conns))
		for _, pc := range m.conns {
			conns = append(conns, pc)
		}
		m.mu.Unlock()
		for _, pc := range conns {
			for _, st := range pc.streams {
				st.closeConn()
			}
		}
		m.loop.Stop()
	})
}

// PeerStats snapshots the per-peer transport counters (frames, coalesced
// flushes, bytes, drops per plane; inbound frames/bytes).
func (m *TCPMesh) PeerStats() map[types.NodeID]metrics.TransportSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[types.NodeID]metrics.TransportSnapshot, len(m.stats))
	for id, s := range m.stats {
		out[id] = s.Snapshot()
	}
	return out
}

// TotalStats aggregates PeerStats across all peers.
func (m *TCPMesh) TotalStats() metrics.TransportSnapshot {
	var total metrics.TransportSnapshot
	for _, s := range m.PeerStats() {
		total.Add(s)
	}
	return total
}

// statsFor returns (creating if needed) a peer's counter block.
func (m *TCPMesh) statsFor(id types.NodeID) *metrics.PeerTransport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statsForLocked(id)
}

func (m *TCPMesh) statsForLocked(id types.NodeID) *metrics.PeerTransport {
	s, ok := m.stats[id]
	if !ok {
		s = &metrics.PeerTransport{}
		m.stats[id] = s
	}
	return s
}

func (m *TCPMesh) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			select {
			case <-m.stopped:
				return
			default:
				m.logger.Printf("transport: accept: %v", err)
				continue
			}
		}
		go m.readLoop(conn)
	}
}

// readLoop handshakes (peer sends its 2-byte ID plus a plane byte) then
// decodes frames.
func (m *TCPMesh) readLoop(conn net.Conn) {
	m.mu.Lock()
	select {
	case <-m.stopped:
		m.mu.Unlock()
		conn.Close()
		return
	default:
	}
	m.inbound[conn] = unknownPeer
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.inbound, conn)
		m.mu.Unlock()
		conn.Close()
	}()
	var hello [3]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := types.NodeID(binary.LittleEndian.Uint16(hello[:2]))
	if _, known := m.addrs[from]; !known || from == m.self {
		// The self-declared ID must name another committee member:
		// arbitrary IDs would otherwise allocate per-peer pipeline state
		// (queues, drainer goroutines) for 65k fictitious senders.
		m.logger.Printf("transport: rejecting connection claiming id %s", from)
		return
	}
	if hello[2] >= planeCount {
		m.logger.Printf("transport: rejecting connection from %s with plane %d", from, hello[2])
		return
	}
	m.mu.Lock()
	m.inbound[conn] = from // stall teardown severs this peer's conns
	m.mu.Unlock()
	stats := m.statsFor(from)
	health := m.healthFor(from)
	var lenBuf [4]byte
	// Delta-cut receive state: the last cut this CONNECTION carried, in
	// stream order. TCP ordering keeps it in lockstep with the sender's
	// per-connection copy; a reconnect starts a fresh readLoop with no
	// base, which is exactly the full-frame fallback.
	var lastCut types.Cut
	haveCut := false
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			m.logger.Printf("transport: bad frame size %d from %s", n, from)
			return
		}
		// Pooled zero-copy ingress: the frame is read into a refcounted
		// buffer and DecodeFrom aliases the message's payload slices into
		// it — no per-field copies, no per-frame allocation churn. The
		// frame reference rides with the message; any pipeline stage that
		// drops the message releases it, delivery abandons it to the GC
		// (the protocol may retain aliased data — see wire.Frame).
		fr := wire.GetFrame(int(n))
		if _, err := io.ReadFull(conn, fr.Data()); err != nil {
			fr.Release()
			return
		}
		stats.RecvFrames.Add(1)
		stats.RecvBytes.Add(uint64(n) + 4)
		health.lastRecv.Store(time.Now().UnixNano())
		var msg types.Message
		var err error
		if wire.IsDeltaFrame(fr.Data()) {
			// A delta that fails to reconstruct (no base, or a base
			// mismatch) means connection state diverged: close the
			// connection rather than guess — the peer's redial restarts
			// from full encodings.
			msg, err = wire.DecodeDeltaFrom(fr.Data(), lastCut, haveCut)
			if err != nil {
				fr.Release()
				m.logger.Printf("transport: delta decode from %s: %v", from, err)
				return
			}
		} else if msg, err = wire.DecodeFrom(fr.Data()); err != nil {
			fr.Release()
			m.logger.Printf("transport: decode from %s: %v", from, err)
			continue
		}
		if cut, ok := wire.CutCarrier(msg); ok {
			// Clone: the decoded cut aliases fr, whose buffer recycles if
			// a downstream stage drops the message; connection state must
			// own its memory.
			lastCut = cut.Clone()
			haveCut = true
		}
		if m.gossip != nil {
			if p, ok := msg.(*types.Proposal); ok {
				if !m.gossip.firstSeen(p.Digest()) {
					m.loop.ctrs.GossipDupDrops.Add(1)
					fr.Release()
					continue
				}
				m.relayCar(fr.Data(), from, p.Lane)
			}
		}
		m.loop.DeliverFramed(from, msg, fr)
	}
}

// encodeFrame wire-encodes msg (length prefix included) into a pooled
// frame with one reference held by the caller. Messages whose encoding
// exceeds the frame limit are dropped here: transmitting them would make
// every receiver close the connection and the retransmitting protocol
// would churn redials forever (a symptom of misconfiguration — e.g. a
// batch-size cap beyond wire.MaxFrame — not of hostile peers).
func (m *TCPMesh) encodeFrame(msg types.Message) *frame {
	buf := wire.GetBuf(4 + wire.SizeHint(msg))
	buf.B = append(buf.B, 0, 0, 0, 0)
	var err error
	buf.B, err = wire.EncodeTo(buf.B, msg)
	if err != nil {
		buf.Release()
		m.logger.Printf("transport: encode: %v", err)
		return nil
	}
	if len(buf.B)-4 > maxFrame {
		m.logger.Printf("transport: dropping oversized %d-byte message (frame limit %d): check batch/car size configuration", len(buf.B)-4, int64(maxFrame))
		buf.Release()
		return nil
	}
	binary.LittleEndian.PutUint32(buf.B, uint32(len(buf.B)-4))
	f := framePool.Get().(*frame)
	f.buf = buf
	f.refs.Store(1)
	if m.deltaCuts {
		if cut, ok := wire.CutCarrier(msg); ok {
			f.msg = msg
			f.cut = cut
			f.hasCut = true
		}
	}
	return f
}

// SetLinkFaults installs a fault injector on this mesh's egress (call
// before Start; nil disables). Loopback (self) deliveries are unaffected
// — a real network cannot touch them.
func (m *TCPMesh) SetLinkFaults(f *LinkFaults) { m.faults = f }

// EnableGossip switches car dissemination from full-mesh broadcast to
// seeded fanout-k gossip (see gossip.go). Call before Start. A fanout
// at or above the peer count degenerates to full mesh.
func (m *TCPMesh) EnableGossip(fanout int, seed uint64) {
	m.gossip = newGossipState(fanout, seed)
	m.gossipPeers = sortedPeers(m.addrs, m.self)
}

// EnableDeltaCuts makes this node's plane writers delta-compress
// cut-bearing control frames against each connection's previous cut
// (see wire/delta.go). Call before Start. Receiving delta frames needs
// no flag — every mesh decodes them.
func (m *TCPMesh) EnableDeltaCuts() { m.deltaCuts = true }

// deliverFrame routes one frame to a peer through the fault injector (if
// any): it may be dropped, duplicated, or re-enter the queue later from a
// timer goroutine (delay/reorder).
func (m *TCPMesh) deliverFrame(to types.NodeID, f *frame, plane int) {
	if m.faults == nil {
		m.enqueueFrame(to, f, plane)
		return
	}
	v := m.faults.decide(to, plane)
	if v.drop {
		return
	}
	if v.delay <= 0 {
		for i := 0; i < v.copies; i++ {
			m.enqueueFrame(to, f, plane)
		}
		return
	}
	f.refs.Add(1) // hold the frame for the timer
	copies := v.copies
	time.AfterFunc(v.delay, func() {
		for i := 0; i < copies; i++ {
			m.enqueueFrame(to, f, plane)
		}
		f.release()
	})
}

// enqueueFrame hands a frame (adding a reference) to one peer's plane.
func (m *TCPMesh) enqueueFrame(to types.NodeID, f *frame, plane int) {
	st := m.peer(to).streams[plane]
	f.refs.Add(1)
	select {
	case st.out <- f:
	default:
		// Peer queue full (slow or down): drop; retransmission recovers.
		st.ctr.Drops.Add(1)
		f.release()
	}
}

// Send implements Sender (from is always the local replica).
func (m *TCPMesh) Send(_, to types.NodeID, msg types.Message) {
	if to == m.self {
		m.loop.Deliver(m.self, msg)
		return
	}
	if f := m.encodeFrame(msg); f != nil {
		m.deliverFrame(to, f, planeOf(msg.Type()))
		f.release()
	}
}

// Broadcast implements Sender: the message is encoded once and the same
// reference-counted frame is enqueued to every peer (writers only read
// it), instead of paying the encoding n-1 times. With gossip enabled,
// cars go to a fanout-k sample instead of every peer; relays finish the
// dissemination (see gossip.go).
func (m *TCPMesh) Broadcast(_ types.NodeID, msg types.Message) {
	f := m.encodeFrame(msg)
	if f == nil {
		return
	}
	if m.gossip != nil && msg.Type() == types.MsgProposal {
		if p, ok := msg.(*types.Proposal); ok {
			// Mark own cars seen so a stray relay loop back to the origin
			// is dropped, not re-relayed. Retransmissions re-enter here and
			// draw a FRESH sample — the liveness backstop reaches peers the
			// first sample's relay graph missed.
			m.gossip.firstSeen(p.Digest())
			targets := m.gossip.sample(m.gossipPeers, func(types.NodeID) bool { return false })
			for _, id := range targets {
				m.deliverFrame(id, f, planeData)
			}
			m.loop.ctrs.GossipOrigin.Add(1)
			f.release()
			return
		}
	}
	plane := planeOf(msg.Type())
	for id := range m.addrs {
		if id != m.self {
			m.deliverFrame(id, f, plane)
		}
	}
	f.release()
}

// relayCar forwards a first-seen car's raw frame bytes (one copy into a
// pooled buffer, shared by reference across the sampled relay peers),
// excluding the peer that sent it and the origin lane. Runs on the read
// goroutine before signature verification: one hash check per hop, with
// k-bounded amplification as the worst case for a forged car.
func (m *TCPMesh) relayCar(payload []byte, from, origin types.NodeID) {
	targets := m.gossip.sample(m.gossipPeers, func(id types.NodeID) bool {
		return id == from || id == origin
	})
	if len(targets) == 0 {
		return
	}
	buf := wire.GetBuf(4 + len(payload))
	buf.B = append(buf.B, 0, 0, 0, 0)
	buf.B = append(buf.B, payload...)
	binary.LittleEndian.PutUint32(buf.B, uint32(len(payload)))
	f := framePool.Get().(*frame)
	f.buf = buf
	f.refs.Store(1)
	for _, id := range targets {
		m.deliverFrame(id, f, planeData)
	}
	m.loop.ctrs.GossipRelays.Add(1)
	f.release()
}

// peer returns (creating if needed) the outbound connection manager.
func (m *TCPMesh) peer(to types.NodeID) *peerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pc, ok := m.conns[to]; ok {
		return pc
	}
	pc := &peerConn{}
	stats := m.statsForLocked(to)
	health := m.healthForLocked(to)
	ctrs := [planeCount]*metrics.PlaneCounters{&stats.Control, &stats.Data}
	for p := 0; p < planeCount; p++ {
		st := &stream{out: make(chan *frame, planeQueueDepth[p]), plane: p, ctr: ctrs[p], health: health}
		pc.streams[p] = st
		go m.writeLoop(to, st)
	}
	m.conns[to] = pc
	return pc
}

// writeLoop dials (with jittered backoff) and streams one plane's
// frames to a peer. Every failure path sleeps through the backoff —
// dial errors, handshake errors, and stream errors alike — so a peer
// that accepts connections but instantly kills them cannot drive a hot
// redial loop. The backoff is seeded per (self, peer, plane), so a
// full-cluster restart produces desynchronized redial schedules instead
// of a thundering herd, and it resets to the base delay only after a
// connection SURVIVES for a while (backoffResetAfter), not merely on a
// successful dial: a peer that dies right after accepting keeps the
// delay growing.
func (m *TCPMesh) writeLoop(to types.NodeID, st *stream) {
	bo := newDialBackoff(backoffSeed(m.self, to, st.plane))
	stats := m.statsFor(to)
	dialed := false
	for {
		select {
		case <-m.stopped:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", m.addrs[to], 3*time.Second)
		if err != nil {
			if !m.sleepBackoff(bo) {
				return
			}
			continue
		}
		// Handshake: announce our ID and this connection's plane.
		var hello [3]byte
		binary.LittleEndian.PutUint16(hello[:2], uint16(m.self))
		hello[2] = byte(st.plane)
		if _, err := conn.Write(hello[:]); err != nil {
			conn.Close()
			if !m.sleepBackoff(bo) {
				return
			}
			continue
		}
		stats.Dials.Add(1)
		if dialed {
			stats.Redials.Add(1)
		}
		dialed = true
		st.setConn(conn)
		start := time.Now()
		err = m.streamFrames(conn, st)
		st.clearConn()
		conn.Close()
		if err == nil {
			return // mesh stopped
		}
		bo.noteSuccess(time.Since(start))
		if !m.sleepBackoff(bo) {
			return
		}
	}
}

// streamFrames drains the plane's queue into coalesced writev batches:
// one blocking receive, then an opportunistic drain up to the coalescing
// limits, then a single net.Buffers write for the whole run of frames.
//
// With delta cuts enabled, cut-bearing frames are re-encoded here — per
// connection, against the previous cut sent ON THIS CONNECTION, in
// stream order — and the delta replaces the shared full encoding when
// it is smaller. The state is local to one streamFrames call, so a
// reconnect (new call) naturally restarts from full frames, mirroring
// the receiver's per-connection state in readLoop.
func (m *TCPMesh) streamFrames(conn net.Conn, st *stream) error {
	batch := make([]*frame, 0, coalesceFrames)
	// scratch backs each flush's net.Buffers. WriteTo consumes the
	// slice header it is given, so every flush hands it a fresh header
	// over this persistent array — reusing the consumed header would
	// shrink its capacity to nothing and put an allocation back on the
	// hot path.
	scratch := make([][]byte, 0, coalesceFrames)
	deltas := make([]*wire.Buf, 0, coalesceFrames)
	var lastCut types.Cut
	haveCut := false
	for {
		select {
		case <-m.stopped:
			return nil
		case f := <-st.out:
			batch = append(batch[:0], f)
			total := len(f.buf.B)
		drain:
			for len(batch) < coalesceFrames && total < coalesceBytes {
				select {
				case f2 := <-st.out:
					batch = append(batch, f2)
					total += len(f2.buf.B)
				default:
					break drain
				}
			}
			scratch = scratch[:0]
			deltas = deltas[:0]
			wrote := 0
			for _, fr := range batch {
				b := fr.buf.B
				if fr.hasCut {
					if haveCut {
						db := wire.GetBuf(len(b))
						db.B = append(db.B, 0, 0, 0, 0)
						var err error
						db.B, err = wire.EncodeDeltaTo(db.B, fr.msg, lastCut)
						if err == nil && len(db.B) < len(b) {
							binary.LittleEndian.PutUint32(db.B, uint32(len(db.B)-4))
							deltas = append(deltas, db)
							b = db.B
							st.ctr.DeltaFrames.Add(1)
						} else {
							// Delta unavailable or not smaller: keep the
							// shared full frame.
							db.Release()
						}
					}
					lastCut = fr.cut
					haveCut = true
				}
				scratch = append(scratch, b)
				wrote += len(b)
			}
			bufs := net.Buffers(scratch)
			// Mark the write in flight: if WriteTo blocks past the stall
			// timeout (peer stopped reading but keeps the session open),
			// the stall monitor severs conn from outside, failing the
			// write and bouncing this loop back to a redial.
			st.writeStart.Store(time.Now().UnixNano())
			_, err := bufs.WriteTo(conn)
			st.writeStart.Store(0)
			if err != nil {
				// Re-queue best effort (references kept, full encodings —
				// the new connection re-derives its own delta state), then
				// redial.
				for _, db := range deltas {
					db.Release()
				}
				for _, fr := range batch {
					select {
					case st.out <- fr:
					default:
						st.ctr.Drops.Add(1)
						fr.release()
					}
				}
				return err
			}
			st.ctr.Frames.Add(uint64(len(batch)))
			st.ctr.Flushes.Add(1)
			st.ctr.Bytes.Add(uint64(wrote))
			st.health.lastSend.Store(time.Now().UnixNano())
			for _, db := range deltas {
				db.Release()
			}
			for _, fr := range batch {
				fr.release()
			}
		}
	}
}
