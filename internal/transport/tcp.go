package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wire"
)

// TCPMesh connects one local replica to its peers over TCP, with
// length-framed wire-encoded messages, lazy dialing and automatic
// reconnection — the stdlib equivalent of the paper's Tokio TCP stack.
type TCPMesh struct {
	self  types.NodeID
	addrs map[types.NodeID]string
	loop  *Loop

	mu    sync.Mutex
	conns map[types.NodeID]*peerConn
	// inbound tracks accepted connections so Stop can sever them: a
	// stopped mesh that keeps reading would silently swallow peers'
	// frames, hiding the death from their reconnection logic (and from a
	// restarted process listening on the same address).
	inbound map[net.Conn]struct{}

	listener net.Listener
	stopped  chan struct{}
	once     sync.Once
	logger   *log.Logger
}

type peerConn struct {
	out  chan []byte
	done chan struct{}
}

// maxFrame bounds a single framed message, aligned with the wire codec's
// own payload cap: a frame the decoder could never accept must close the
// connection instead of allocating its claimed size.
const maxFrame = wire.MaxFrame

// NewTCPMesh builds the mesh for `self`, given every replica's address.
func NewTCPMesh(self types.NodeID, addrs map[types.NodeID]string, proto runtime.Protocol, epoch time.Time, logger *log.Logger) *TCPMesh {
	if logger == nil {
		logger = log.Default()
	}
	m := &TCPMesh{
		self:    self,
		addrs:   addrs,
		conns:   make(map[types.NodeID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		stopped: make(chan struct{}),
		logger:  logger,
	}
	m.loop = NewLoop(self, proto, m, epoch)
	return m
}

// Loop returns the local replica's event loop (for client submissions).
func (m *TCPMesh) Loop() *Loop { return m.loop }

// Start listens on this replica's address and launches the event loop.
func (m *TCPMesh) Start() error {
	ln, err := net.Listen("tcp", m.addrs[m.self])
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", m.addrs[m.self], err)
	}
	m.listener = ln
	go m.acceptLoop()
	go m.loop.Run()
	return nil
}

// Stop closes the listener, connections (inbound included) and the loop.
func (m *TCPMesh) Stop() {
	m.once.Do(func() {
		close(m.stopped)
		if m.listener != nil {
			m.listener.Close()
		}
		m.mu.Lock()
		for conn := range m.inbound {
			conn.Close()
		}
		m.mu.Unlock()
		m.loop.Stop()
	})
}

func (m *TCPMesh) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			select {
			case <-m.stopped:
				return
			default:
				m.logger.Printf("transport: accept: %v", err)
				continue
			}
		}
		go m.readLoop(conn)
	}
}

// readLoop handshakes (peer sends its 2-byte ID) then decodes frames.
func (m *TCPMesh) readLoop(conn net.Conn) {
	m.mu.Lock()
	select {
	case <-m.stopped:
		m.mu.Unlock()
		conn.Close()
		return
	default:
	}
	m.inbound[conn] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.inbound, conn)
		m.mu.Unlock()
		conn.Close()
	}()
	var idBuf [2]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		return
	}
	from := types.NodeID(binary.LittleEndian.Uint16(idBuf[:]))
	if _, known := m.addrs[from]; !known || from == m.self {
		// The self-declared ID must name another committee member:
		// arbitrary IDs would otherwise allocate per-peer pipeline state
		// (queues, drainer goroutines) for 65k fictitious senders.
		m.logger.Printf("transport: rejecting connection claiming id %s", from)
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			m.logger.Printf("transport: bad frame size %d from %s", n, from)
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			m.logger.Printf("transport: decode from %s: %v", from, err)
			continue
		}
		m.loop.Deliver(from, msg)
	}
}

// encodeFrame wire-encodes msg with its length prefix. Messages whose
// encoding exceeds the frame limit are dropped here: transmitting them
// would make every receiver close the connection and the retransmitting
// protocol would churn redials forever (a symptom of misconfiguration —
// e.g. a batch-size cap beyond wire.MaxFrame — not of hostile peers).
func (m *TCPMesh) encodeFrame(msg types.Message) []byte {
	data, err := wire.Encode(msg)
	if err != nil {
		m.logger.Printf("transport: encode: %v", err)
		return nil
	}
	if len(data) > maxFrame {
		m.logger.Printf("transport: dropping oversized %d-byte message (frame limit %d): check batch/car size configuration", len(data), int64(maxFrame))
		return nil
	}
	frame := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)
	return frame
}

// enqueueFrame hands a frame to one peer's writer.
func (m *TCPMesh) enqueueFrame(to types.NodeID, frame []byte) {
	pc := m.peer(to)
	select {
	case pc.out <- frame:
	default:
		// Peer queue full (slow or down): drop; retransmission recovers.
	}
}

// Send implements Sender (from is always the local replica).
func (m *TCPMesh) Send(_, to types.NodeID, msg types.Message) {
	if to == m.self {
		m.loop.Deliver(m.self, msg)
		return
	}
	if frame := m.encodeFrame(msg); frame != nil {
		m.enqueueFrame(to, frame)
	}
}

// Broadcast implements Sender: the message is encoded once and the same
// frame is enqueued to every peer (writers only read it), instead of
// paying the encoding n-1 times.
func (m *TCPMesh) Broadcast(_ types.NodeID, msg types.Message) {
	frame := m.encodeFrame(msg)
	if frame == nil {
		return
	}
	for id := range m.addrs {
		if id != m.self {
			m.enqueueFrame(id, frame)
		}
	}
}

// peer returns (creating if needed) the outbound connection manager.
func (m *TCPMesh) peer(to types.NodeID) *peerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pc, ok := m.conns[to]; ok {
		return pc
	}
	pc := &peerConn{out: make(chan []byte, 4096), done: make(chan struct{})}
	m.conns[to] = pc
	go m.writeLoop(to, pc)
	return pc
}

// writeLoop dials (with backoff) and streams frames to one peer.
func (m *TCPMesh) writeLoop(to types.NodeID, pc *peerConn) {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-m.stopped:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", m.addrs[to], 3*time.Second)
		if err != nil {
			select {
			case <-m.stopped:
				return
			case <-time.After(backoff):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 100 * time.Millisecond
		// Handshake: announce our ID.
		var idBuf [2]byte
		binary.LittleEndian.PutUint16(idBuf[:], uint16(m.self))
		if _, err := conn.Write(idBuf[:]); err != nil {
			conn.Close()
			continue
		}
		if err := m.streamFrames(conn, pc); err != nil {
			conn.Close()
			continue
		}
		conn.Close()
		return
	}
}

func (m *TCPMesh) streamFrames(conn net.Conn, pc *peerConn) error {
	for {
		select {
		case <-m.stopped:
			return nil
		case frame := <-pc.out:
			if _, err := conn.Write(frame); err != nil {
				// Re-queue best effort, then redial.
				select {
				case pc.out <- frame:
				default:
				}
				return err
			}
		}
	}
}
