package transport

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// The jitter window must stay inside [d/2, 3d/2) of the nominal
// exponential delay, double toward the cap, and never exceed 1.5x cap.
func TestDialBackoffJitterAndCap(t *testing.T) {
	bo := newDialBackoff(backoffSeed(0, 1, 0))
	nominal := backoffBase
	for i := 0; i < 12; i++ {
		d := bo.next()
		if d < nominal/2 || d >= nominal+nominal/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, nominal/2, nominal+nominal/2)
		}
		if nominal < backoffCap {
			nominal *= 2
			if nominal > backoffCap {
				nominal = backoffCap
			}
		}
	}
	if nominal != backoffCap {
		t.Fatalf("nominal delay %v never reached cap %v", nominal, backoffCap)
	}
}

// A connection must survive backoffResetAfter before the schedule
// resets: a peer that accepts and instantly dies keeps the delay
// growing (the reset-on-dial bug this replaces), while a connection
// with a real lifetime earns a fresh start.
func TestDialBackoffResetOnlyAfterSurvival(t *testing.T) {
	bo := newDialBackoff(backoffSeed(0, 1, 1))
	for i := 0; i < 8; i++ {
		bo.next()
	}
	if bo.cur != backoffCap {
		t.Fatalf("cur = %v, want cap %v", bo.cur, backoffCap)
	}
	bo.noteSuccess(backoffResetAfter / 2)
	if bo.cur != backoffCap {
		t.Fatalf("short-lived connection reset the backoff (cur = %v)", bo.cur)
	}
	bo.noteSuccess(backoffResetAfter)
	if bo.cur != backoffBase {
		t.Fatalf("surviving connection did not reset the backoff (cur = %v)", bo.cur)
	}
}

// N writers redialing one recovered peer must not share a delay
// sequence: the seed mixes (self, peer, plane), so a full-cluster
// restart spreads the herd.
func TestDialBackoffDesynchronized(t *testing.T) {
	const writers = 8
	delays := make(map[time.Duration]int)
	for self := types.NodeID(0); self < writers; self++ {
		bo := newDialBackoff(backoffSeed(self, 9, 0))
		bo.next()
		bo.next()
		delays[bo.next()]++
	}
	if len(delays) < writers/2 {
		t.Fatalf("only %d distinct third delays across %d writers: %v", len(delays), writers, delays)
	}
	// Same (self, peer, plane) must reproduce the same sequence
	// (deterministic, so failures replay).
	a, b := newDialBackoff(backoffSeed(3, 9, 0)), newDialBackoff(backoffSeed(3, 9, 0))
	for i := 0; i < 5; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("same seed diverged at attempt %d: %v != %v", i, da, db)
		}
	}
}

// wedgedListener accepts connections and reads the 3-byte handshake,
// then goes silent: never reads another byte, never writes one. The
// TCP sessions stay open — the stalled-but-connected peer.
type wedgedListener struct {
	ln      net.Listener
	accepts atomic.Int32
}

func newWedgedListener(t *testing.T, addr string) *wedgedListener {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := &wedgedListener{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			w.accepts.Add(1)
			go func() {
				var hello [3]byte
				io.ReadFull(conn, hello[:])
				// Wedge: hold the session open, make no progress.
				select {}
			}()
		}
	}()
	return w
}

// A peer that keeps its TCP sessions open but makes no progress must be
// detected within the stall timeout, torn down, and redialed.
func TestStallDetectorRedialsWedgedPeer(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	wedged := newWedgedListener(t, ports[1])
	defer wedged.ln.Close()

	m := NewTCPMesh(0, addrs, &collector{}, time.Now(), nil)
	const stallTimeout = 250 * time.Millisecond
	m.SetStallTimeout(stallTimeout)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Keep talking to the wedged peer so lastSend advances while
	// lastRecv never does — the stall signature.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.Send(0, 1, &types.Vote{Lane: 0, Position: 1, Voter: 0})
			}
		}
	}()

	// Detection + teardown + redial should complete within a few stall
	// timeouts (monitor ticks at timeout/4, then one redial backoff).
	waitFor(t, func() bool {
		s := m.PeerStats()[1]
		return s.Stalls >= 1 && s.Redials >= 1
	}, "stall detection and redial")
	waitFor(t, func() bool { return wedged.accepts.Load() >= 3 }, "re-accept after teardown")
}

// A stall teardown closes its episode: once the victim's connections
// are severed and egress goes quiet, the monitor must not re-declare
// the same silence sweep after sweep (the parked writeLoop leaves the
// dead conn registered with growing age, so without the episode cut the
// detector flaps forever on an idle cluster, repeatedly severing the
// peer's fresh inbound connections). Re-declaring takes new evidence:
// a post-teardown egress flush followed by a fresh timeout of silence.
func TestStallDetectorDeclaresOncePerEpisode(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	wedged := newWedgedListener(t, ports[1])
	defer wedged.ln.Close()

	m := NewTCPMesh(0, addrs, &collector{}, time.Now(), nil)
	const stallTimeout = 200 * time.Millisecond
	m.SetStallTimeout(stallTimeout)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Talk to the wedged peer until the first stall fires, then go
	// fully idle.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.Send(0, 1, &types.Vote{Lane: 0, Position: 1, Voter: 0})
			}
		}
	}()
	waitFor(t, func() bool { return m.PeerStats()[1].Stalls >= 1 }, "first stall")
	close(stop)

	// Let any episode already in flight (a queued frame redialing and
	// flushing into the wedged peer) run to completion: wait until the
	// count holds still for a few timeouts. Adaptive, not a fixed
	// sleep — under -race on a loaded machine an in-flight episode can
	// take several backoff+silence rounds to drain.
	before := m.PeerStats()[1].Stalls
	settleDeadline := time.Now().Add(30 * stallTimeout)
	for {
		time.Sleep(4 * stallTimeout)
		cur := m.PeerStats()[1].Stalls
		if cur == before {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("stall count never settled after egress stopped (at %d)", cur)
		}
		before = cur
	}
	// Then a long quiet stretch: with no egress after the teardown
	// there is no new evidence, so the count must not move. (The flap
	// this pins against grew it once per monitor sweep — +4 per
	// timeout, so this window alone would add ~32.)
	time.Sleep(8 * stallTimeout)
	if after := m.PeerStats()[1].Stalls; after != before {
		t.Fatalf("idle stall count flapped: %d -> %d with no egress after teardown", before, after)
	}
}

// Two healthy meshes exchanging traffic must never trip the detector,
// even with a stall timeout far below the run length: every send is
// answered, so lastRecv keeps pace with lastSend.
func TestStallDetectorNoFalsePositive(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	a, b := &collector{}, &collector{echo: true}
	ma := NewTCPMesh(0, addrs, a, epoch, nil)
	mb := NewTCPMesh(1, addrs, b, epoch, nil)
	const stallTimeout = 150 * time.Millisecond
	ma.SetStallTimeout(stallTimeout)
	mb.SetStallTimeout(stallTimeout)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	deadline := time.Now().Add(6 * stallTimeout)
	for time.Now().Before(deadline) {
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: 1, Voter: 0})
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(t, func() bool { return b.count() > 0 && a.count() > 0 }, "round trips")
	if s := ma.PeerStats()[1]; s.Stalls != 0 {
		t.Fatalf("healthy peer flagged stalled %d times", s.Stalls)
	}
	if s := mb.PeerStats()[0]; s.Stalls != 0 {
		t.Fatalf("healthy peer flagged stalled %d times (reverse direction)", s.Stalls)
	}
}
