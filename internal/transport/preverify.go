package transport

import (
	gort "runtime"
	"sync"

	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wire"
)

// verifyPool is the parallel pre-verification stage of the ingress
// pipeline: it sits between frame decode and the event loop, running the
// protocol's PreVerify on a bounded pool of worker goroutines so
// signature arithmetic uses every core instead of serializing on the
// single event-loop goroutine.
//
// Delivery order is preserved per peer: each sender has a FIFO queue of
// in-flight tasks and a drainer goroutine that hands results to the loop
// strictly in arrival order, waiting for the head task's verification to
// finish before delivering it. Verification of queued tasks proceeds
// concurrently and out of order; only delivery is ordered. Cross-peer
// ordering is not preserved — the network gives no such guarantee to
// begin with.
//
// Backpressure and overload mirror Loop.Deliver's contract: a full
// per-peer queue drops the message (protocol retransmission recovers).
// The shared work queue is deep; when it does fill, submit blocks until
// a worker frees a slot — a wait bounded by roughly one verification
// duration, never a full verification on the submitting goroutine. For
// the TCP mesh that propagates backpressure to the peer's socket; for
// the in-process mesh it briefly stalls the sender only when the
// receiver's pool is saturated.

// peerQueueDepth bounds one sender's in-flight pre-verifications. The
// TCP mesh only accepts handshakes from committee members, so total
// in-flight work is bounded by committee size times this.
const peerQueueDepth = 4096

// workQueueDepth bounds verifications queued to the worker pool.
const workQueueDepth = 8192

// verifyTask is one message moving through the verification stage.
type verifyTask struct {
	from  types.NodeID
	msg   types.Message
	frame *wire.Frame // backing ingress frame (nil for in-process meshes)
	done  chan struct{}
	ok    bool
}

func (t *verifyTask) run(pv runtime.PreVerifier) {
	t.ok = pv.PreVerify(t.from, t.msg) == nil
	close(t.done)
}

type verifyPool struct {
	pv      runtime.PreVerifier
	deliver func(from types.NodeID, m types.Message, frame *wire.Frame)
	stopped <-chan struct{}

	workers int
	work    chan *verifyTask
	once    sync.Once

	mu    sync.Mutex
	peers map[types.NodeID]chan *verifyTask
}

func newVerifyPool(pv runtime.PreVerifier, deliver func(types.NodeID, types.Message, *wire.Frame), stopped <-chan struct{}) *verifyPool {
	return &verifyPool{
		pv:      pv,
		deliver: deliver,
		stopped: stopped,
		workers: gort.GOMAXPROCS(0),
		peers:   make(map[types.NodeID]chan *verifyTask),
	}
}

// setWorkers overrides the worker count; effective only before the first
// submission starts the pool.
func (p *verifyPool) setWorkers(n int) {
	if n > 0 {
		p.workers = n
	}
}

func (p *verifyPool) start() {
	p.once.Do(func() {
		p.work = make(chan *verifyTask, workQueueDepth)
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	})
}

func (p *verifyPool) worker() {
	for {
		select {
		case <-p.stopped:
			return
		case t := <-p.work:
			t.run(p.pv)
		}
	}
}

// submit enqueues one decoded message for verification and eventual
// in-order delivery. Called from the mesh's read path. A backing ingress
// frame travels with the task; drop paths release it for recycling.
func (p *verifyPool) submit(from types.NodeID, m types.Message, frame *wire.Frame) {
	p.start()
	t := &verifyTask{from: from, msg: m, frame: frame, done: make(chan struct{})}
	select {
	case p.peerQueue(from) <- t:
	default:
		// Peer queue full: drop, retransmission recovers.
		if frame != nil {
			frame.Release()
		}
		return
	}
	select {
	case p.work <- t:
	case <-p.stopped:
		// Pool shutting down: resolve the task so the drainer (if it
		// races the stop signal) never waits on it.
		close(t.done)
	}
}

func (p *verifyPool) peerQueue(from types.NodeID) chan *verifyTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	q, ok := p.peers[from]
	if !ok {
		q = make(chan *verifyTask, peerQueueDepth)
		p.peers[from] = q
		go p.drain(q)
	}
	return q
}

// drain delivers one peer's verified messages in arrival order.
func (p *verifyPool) drain(q chan *verifyTask) {
	for {
		select {
		case <-p.stopped:
			return
		case t := <-q:
			select {
			case <-p.stopped:
				return
			case <-t.done:
			}
			if t.ok {
				p.deliver(t.from, t.msg, t.frame)
			} else if t.frame != nil {
				// Verification failed: the message dies here, so its
				// frame can be recycled — under a forgery flood this is
				// the path that keeps the allocator out of the picture.
				t.frame.Release()
			}
		}
	}
}
