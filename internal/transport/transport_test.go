package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// collector is a Protocol recording events (thread-safe: assertions
// happen from the test goroutine).
type collector struct {
	mu       sync.Mutex
	msgs     []types.Message
	froms    []types.NodeID
	timers   int32
	batches  int32
	initDone atomic.Bool
	echo     bool
}

func (c *collector) Init(ctx runtime.Context) { c.initDone.Store(true) }
func (c *collector) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.froms = append(c.froms, from)
	c.mu.Unlock()
	if c.echo {
		ctx.Send(from, &types.Vote{Lane: 0, Position: 99, Voter: ctx.ID()})
	}
}
func (c *collector) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	atomic.AddInt32(&c.timers, 1)
}
func (c *collector) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	atomic.AddInt32(&c.batches, 1)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLocalMeshDelivery(t *testing.T) {
	mesh := NewLocalMesh()
	a, b := &collector{}, &collector{echo: true}
	la := mesh.AddNode(a, time.Now())
	mesh.AddNode(b, time.Now())
	mesh.Start()
	defer mesh.Stop()

	la.Send(1, &types.Vote{Lane: 0, Position: 1, Voter: 0})
	waitFor(t, func() bool { return b.count() == 1 }, "delivery to b")
	waitFor(t, func() bool { return a.count() == 1 }, "echo back to a")
	if a.froms[0] != 1 {
		t.Fatalf("echo from = %v", a.froms[0])
	}
}

func TestLocalMeshBroadcastExcludesSelf(t *testing.T) {
	mesh := NewLocalMesh()
	cols := make([]*collector, 4)
	for i := range cols {
		cols[i] = &collector{}
		mesh.AddNode(cols[i], time.Now())
	}
	mesh.Start()
	defer mesh.Stop()
	mesh.Loop(2).Broadcast(&types.Vote{Lane: 0, Position: 1, Voter: 2})
	waitFor(t, func() bool {
		return cols[0].count() == 1 && cols[1].count() == 1 && cols[3].count() == 1
	}, "broadcast to peers")
	if cols[2].count() != 0 {
		t.Fatal("broadcast delivered to sender")
	}
}

func TestLoopTimersReplaceAndCancel(t *testing.T) {
	mesh := NewLocalMesh()
	c := &collector{}
	l := mesh.AddNode(c, time.Now())
	mesh.Start()
	defer mesh.Stop()

	tag := runtime.TimerTag{Kind: 1}
	l.SetTimer(30*time.Millisecond, tag)
	l.SetTimer(60*time.Millisecond, tag) // replaces
	time.Sleep(120 * time.Millisecond)
	if got := atomic.LoadInt32(&c.timers); got != 1 {
		t.Fatalf("timer fired %d times, want 1", got)
	}

	l.SetTimer(30*time.Millisecond, runtime.TimerTag{Kind: 2})
	l.CancelTimer(runtime.TimerTag{Kind: 2})
	time.Sleep(80 * time.Millisecond)
	if got := atomic.LoadInt32(&c.timers); got != 1 {
		t.Fatalf("cancelled timer fired (total %d)", got)
	}
}

func TestLoopSubmit(t *testing.T) {
	mesh := NewLocalMesh()
	c := &collector{}
	l := mesh.AddNode(c, time.Now())
	mesh.Start()
	defer mesh.Stop()
	l.Submit(types.NewSyntheticBatch(0, 1, 10, 100, 0, 0))
	waitFor(t, func() bool { return atomic.LoadInt32(&c.batches) == 1 }, "batch")
}

func freePorts(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestTCPMeshRoundTrip(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	a, b := &collector{}, &collector{echo: true}
	ma := NewTCPMesh(0, addrs, a, epoch, nil)
	mb := NewTCPMesh(1, addrs, b, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	// A realistic message with payload survives encode/frame/decode.
	batch := types.NewBatch(0, 1, []types.Transaction{[]byte("hello"), []byte("world")}, 0)
	ma.Send(0, 1, &types.Proposal{Lane: 0, Position: 1, Batch: batch, Sig: make([]byte, 64)})
	waitFor(t, func() bool { return b.count() == 1 }, "TCP delivery")

	b.mu.Lock()
	p, ok := b.msgs[0].(*types.Proposal)
	b.mu.Unlock()
	if !ok || p.Batch.Count != 2 || string(p.Batch.Txs[0]) != "hello" {
		t.Fatalf("decoded = %#v", b.msgs[0])
	}
	waitFor(t, func() bool { return a.count() == 1 }, "TCP echo")
}

func TestTCPMeshSelfSendLoopsBack(t *testing.T) {
	ports := freePorts(t, 1)
	addrs := map[types.NodeID]string{0: ports[0]}
	c := &collector{}
	m := NewTCPMesh(0, addrs, c, time.Now(), nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	m.Send(0, 0, &types.Vote{Lane: 0, Position: 1, Voter: 0})
	waitFor(t, func() bool { return c.count() == 1 }, "self delivery")
}

func TestTCPMeshSurvivesPeerRestart(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	a := &collector{}
	ma := NewTCPMesh(0, addrs, a, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()

	// Peer 1 is down: sends are dropped (queued at most), no panic.
	for i := 0; i < 10; i++ {
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: types.Pos(i), Voter: 0})
	}
	// Peer 1 comes up; subsequent (or queued) messages flow.
	b := &collector{}
	mb := NewTCPMesh(1, addrs, b, epoch, nil)
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && b.count() == 0 {
		ma.Send(0, 1, &types.Vote{Lane: 0, Position: 99, Voter: 0})
		time.Sleep(20 * time.Millisecond)
	}
	if b.count() == 0 {
		t.Fatal("no delivery after peer restart")
	}
}
