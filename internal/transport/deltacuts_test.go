package transport

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/types"
)

func deltaTestCut(n int, round int) types.Cut {
	cut := types.NewEmptyCut(n)
	for i := 0; i < n; i++ {
		sig := make([]byte, 64)
		sig[0] = byte(i)
		cut.Tips[i] = types.TipRef{
			Lane: types.NodeID(i), Position: 3, Digest: types.Digest{byte(i + 1)},
			Cert: &types.PoA{
				Lane: types.NodeID(i), Position: 3, Digest: types.Digest{byte(i + 1)},
				Shares: []types.SigShare{
					{Signer: 0, Sig: sig},
					{Signer: 1, Sig: append([]byte(nil), sig...)},
				},
			},
		}
	}
	// Later rounds advance one lane's tip, the typical slot-over-slot
	// overlap a delta exploits.
	if round > 0 {
		cut.Tips[0].Position = types.Pos(3 + round)
		cut.Tips[0].Digest = types.Digest{0xf0, byte(round)}
		cut.Tips[0].Cert = nil // optimistic tip
	}
	return cut
}

// TestTCPMeshDeltaCuts drives cut-bearing Prepares through a delta-
// enabled sender: the receiver must reconstruct every message intact
// (stream-order state, no flag needed on its side) and the sender's
// DeltaFrames counter must show the compression actually engaged.
func TestTCPMeshDeltaCuts(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	a, b := &collector{}, &collector{}
	ma := NewTCPMesh(0, addrs, a, epoch, nil)
	ma.EnableDeltaCuts()
	mb := NewTCPMesh(1, addrs, b, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	const msgs = 6
	sent := make([]*types.Prepare, msgs)
	for i := 0; i < msgs; i++ {
		// Rounds 0-2 repeat one cut (the CommitNotice-after-Prepare case:
		// pure 36-byte deltas); rounds 3-5 advance one tip per slot.
		round := 0
		if i >= 3 {
			round = i - 2
		}
		sent[i] = &types.Prepare{
			Leader:   0,
			Proposal: types.ConsensusProposal{Slot: types.Slot(i + 1), View: 0, Cut: deltaTestCut(4, round)},
			Ticket:   types.Ticket{Kind: types.TicketCommit},
			Sig:      make([]byte, 64),
		}
		ma.Send(0, 1, sent[i])
	}
	waitFor(t, func() bool { return b.count() == msgs }, "delta-framed delivery")

	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.msgs {
		got, ok := m.(*types.Prepare)
		if !ok {
			t.Fatalf("message %d: %T, want *types.Prepare", i, m)
		}
		if !reflect.DeepEqual(sent[i], got) {
			t.Fatalf("message %d reconstructed wrong:\n in: %#v\nout: %#v", i, sent[i], got)
		}
	}
	deltas := ma.PeerStats()[1].Control.DeltaFrames
	if deltas == 0 {
		t.Fatal("no delta frames on the wire despite overlapping consecutive cuts")
	}
	t.Logf("delta frames: %d of %d", deltas, msgs)
}

// TestTCPMeshDeltaDisabledByDefault: without EnableDeltaCuts the sender
// must emit only full frames — the knob gates the sender, never the
// receiver.
func TestTCPMeshDeltaDisabledByDefault(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	a, b := &collector{}, &collector{}
	ma := NewTCPMesh(0, addrs, a, epoch, nil)
	mb := NewTCPMesh(1, addrs, b, epoch, nil)
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()

	for i := 0; i < 3; i++ {
		ma.Send(0, 1, &types.Prepare{
			Leader:   0,
			Proposal: types.ConsensusProposal{Slot: types.Slot(i + 1), View: 0, Cut: deltaTestCut(4, 0)},
			Ticket:   types.Ticket{Kind: types.TicketCommit},
			Sig:      make([]byte, 64),
		})
	}
	waitFor(t, func() bool { return b.count() == 3 }, "full-frame delivery")
	if deltas := ma.PeerStats()[1].Control.DeltaFrames; deltas != 0 {
		t.Fatalf("%d delta frames emitted without EnableDeltaCuts", deltas)
	}
}
