package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// laneMsg is a minimal shardable message for loop-level tests.
type laneMsg struct {
	lane types.NodeID
	seq  uint64
}

func (*laneMsg) Type() types.MsgType { return types.MsgInternal }
func (*laneMsg) WireSize() int       { return 0 }

// ctrlMsg must stay on the control loop.
type ctrlMsg struct{ seq uint64 }

func (*ctrlMsg) Type() types.MsgType { return types.MsgInternal }
func (*ctrlMsg) WireSize() int       { return 0 }

// shardedRecorder implements runtime.Protocol + runtime.Sharder and
// records, per lane, the order in which messages were delivered, plus
// which goroutine family (shard vs control) handled them.
type shardedRecorder struct {
	shards int

	mu        sync.Mutex
	perLane   map[types.NodeID][]uint64
	ctrlSeen  []uint64
	shardSeen map[int]map[types.NodeID]bool // shard -> lanes it handled
	flushes   map[int]int
}

func newShardedRecorder(w int) *shardedRecorder {
	return &shardedRecorder{
		shards:    w,
		perLane:   make(map[types.NodeID][]uint64),
		shardSeen: make(map[int]map[types.NodeID]bool),
		flushes:   make(map[int]int),
	}
}

func (p *shardedRecorder) Init(runtime.Context) {}
func (p *shardedRecorder) OnMessage(_ runtime.Context, _ types.NodeID, m types.Message) {
	cm, ok := m.(*ctrlMsg)
	if !ok {
		panic(fmt.Sprintf("data-plane message %T delivered to control loop", m))
	}
	p.mu.Lock()
	p.ctrlSeen = append(p.ctrlSeen, cm.seq)
	p.mu.Unlock()
}
func (p *shardedRecorder) OnTimer(runtime.Context, runtime.TimerTag)   {}
func (p *shardedRecorder) OnClientBatch(runtime.Context, *types.Batch) {}

func (p *shardedRecorder) DataShards() int { return p.shards }
func (p *shardedRecorder) BatchShard() int { return 0 }
func (p *shardedRecorder) ShardOf(_ types.NodeID, m types.Message) int {
	if lm, ok := m.(*laneMsg); ok {
		return int(lm.lane) % p.shards
	}
	return -1
}
func (p *shardedRecorder) OnShardMessage(_ runtime.Context, shard int, _ types.NodeID, m types.Message) {
	lm := m.(*laneMsg)
	if int(lm.lane)%p.shards != shard {
		panic(fmt.Sprintf("lane %d delivered to shard %d", lm.lane, shard))
	}
	p.mu.Lock()
	p.perLane[lm.lane] = append(p.perLane[lm.lane], lm.seq)
	ls := p.shardSeen[shard]
	if ls == nil {
		ls = make(map[types.NodeID]bool)
		p.shardSeen[shard] = ls
	}
	ls[lm.lane] = true
	p.mu.Unlock()
}
func (p *shardedRecorder) OnShardBatch(runtime.Context, int, *types.Batch) {}
func (p *shardedRecorder) FlushShard(_ runtime.Context, shard int) {
	p.mu.Lock()
	p.flushes[shard]++
	p.mu.Unlock()
}

// TestShardedLoopFIFOPerLane floods a sharded loop with interleaved
// lane traffic from several peers and checks the per-lane FIFO
// invariant: every lane's messages are delivered in exactly the order
// they were enqueued, even though four shard workers run concurrently
// with the control loop. Run with -race to exercise the concurrency.
func TestShardedLoopFIFOPerLane(t *testing.T) {
	const (
		shards   = 4
		lanes    = 8
		perLane  = 2000
		ctrlMsgs = 500
	)
	rec := newShardedRecorder(shards)
	l := NewLoop(0, rec, nopSender{}, time.Now())
	go l.Run()
	defer func() { l.Stop(); l.Join() }()

	var wg sync.WaitGroup
	// One feeder goroutine per lane mimics the per-peer FIFO delivery the
	// pre-verification pipeline guarantees (a lane's cars arrive in order
	// from their origin).
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for s := uint64(0); s < perLane; s++ {
				l.Deliver(types.NodeID(lane+1), &laneMsg{lane: types.NodeID(lane), seq: s})
			}
		}(lane)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := uint64(0); s < ctrlMsgs; s++ {
			l.Deliver(types.NodeID(99), &ctrlMsg{seq: s})
		}
	}()
	wg.Wait()

	// Wait for queues to drain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec.mu.Lock()
		total := 0
		for _, seqs := range rec.perLane {
			total += len(seqs)
		}
		ctrl := len(rec.ctrlSeen)
		rec.mu.Unlock()
		snap := l.Counters()
		if uint64(total)+snap.ShardDrops == lanes*perLane && uint64(ctrl)+snap.InboxDrops == ctrlMsgs {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	for lane, seqs := range rec.perLane {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] != seqs[i-1]+1 {
				t.Fatalf("lane %s FIFO violated: seq %d followed %d at index %d",
					lane, seqs[i], seqs[i-1], i)
			}
		}
		if len(seqs) == 0 || seqs[0] != 0 {
			t.Fatalf("lane %s lost its head of line", lane)
		}
	}
	// Shard ownership: a lane appears on exactly its ShardOf shard.
	for shard, ls := range rec.shardSeen {
		for lane := range ls {
			if int(lane)%shards != shard {
				t.Fatalf("lane %s processed on shard %d", lane, shard)
			}
		}
	}
	for shard := range rec.flushes {
		if rec.flushes[shard] == 0 {
			t.Fatalf("shard %d never flushed", shard)
		}
	}
	snap := l.Counters()
	if snap.ShardEvents == 0 {
		t.Fatal("no events routed to shards")
	}
	t.Logf("events: control=%d shard=%d; drops: inbox=%d shard=%d",
		snap.ControlEvents, snap.ShardEvents, snap.InboxDrops, snap.ShardDrops)
}

// TestLoopDropCounter pins the enqueue contract: when the inbox is full
// the newest event is dropped and the drop is counted (the old comment
// claimed oldest-drop; the counter makes the real behavior observable).
func TestLoopDropCounter(t *testing.T) {
	rec := newShardedRecorder(2)
	l := NewLoop(0, rec, nopSender{}, time.Now())
	// Do NOT start the loop: queues fill and overflow deterministically.
	for i := 0; i < queueDepth+10; i++ {
		l.Deliver(1, &ctrlMsg{seq: uint64(i)})
	}
	snap := l.Counters()
	if snap.InboxDrops != 10 {
		t.Fatalf("expected 10 inbox drops, got %d", snap.InboxDrops)
	}
	for i := 0; i < shardQueueDepth+7; i++ {
		l.Deliver(1, &laneMsg{lane: 0, seq: uint64(i)})
	}
	snap = l.Counters()
	if snap.ShardDrops != 7 {
		t.Fatalf("expected 7 shard drops, got %d", snap.ShardDrops)
	}
	l.Stop()
}
