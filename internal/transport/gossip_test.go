package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// digestCounter is a Protocol counting proposal arrivals per digest —
// the exactly-once oracle for the gossip tests.
type digestCounter struct {
	mu  sync.Mutex
	got map[types.Digest]int
}

func newDigestCounter() *digestCounter {
	return &digestCounter{got: make(map[types.Digest]int)}
}

func (c *digestCounter) Init(runtime.Context) {}
func (c *digestCounter) OnMessage(_ runtime.Context, _ types.NodeID, m types.Message) {
	if p, ok := m.(*types.Proposal); ok {
		c.mu.Lock()
		c.got[p.Digest()]++
		c.mu.Unlock()
	}
}
func (c *digestCounter) OnTimer(runtime.Context, runtime.TimerTag)   {}
func (c *digestCounter) OnClientBatch(runtime.Context, *types.Batch) {}

func (c *digestCounter) distinct() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *digestCounter) maxCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.got {
		if n > max {
			max = n
		}
	}
	return max
}

func gossipCars(n int) []*types.Proposal {
	cars := make([]*types.Proposal, n)
	for i := range cars {
		pos := types.Pos(i + 1)
		cars[i] = &types.Proposal{
			Lane: 0, Position: pos,
			Batch: types.NewBatch(0, uint64(pos), []types.Transaction{[]byte(fmt.Sprintf("car-%03d", i))}, 0),
			Sig:   make([]byte, 64),
		}
	}
	return cars
}

// TestGossipStateSample pins the sampler: k distinct targets, the skip
// predicate honored, degenerate fanout covering everyone.
func TestGossipStateSample(t *testing.T) {
	ids := []types.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	g := newGossipState(3, 42)
	for round := 0; round < 50; round++ {
		s := g.sample(ids, func(id types.NodeID) bool { return id == 0 || id == 3 })
		if len(s) != 3 {
			t.Fatalf("sample size %d, want 3", len(s))
		}
		seen := make(map[types.NodeID]bool)
		for _, id := range s {
			if id == 0 || id == 3 {
				t.Fatalf("sample included skipped id %s", id)
			}
			if seen[id] {
				t.Fatalf("sample repeated id %s", id)
			}
			seen[id] = true
		}
	}
	// Fanout at or above the eligible count degenerates to everyone.
	wide := newGossipState(10, 1)
	if s := wide.sample(ids, func(id types.NodeID) bool { return id == 7 }); len(s) != 7 {
		t.Fatalf("degenerate sample covered %d of 7 eligible", len(s))
	}
}

// TestGossipFirstSeen: the dedup memo admits a digest once, across the
// two-generation rotation.
func TestGossipFirstSeen(t *testing.T) {
	g := newGossipState(2, 7)
	d := types.Digest{1}
	if !g.firstSeen(d) {
		t.Fatal("fresh digest reported as seen")
	}
	if g.firstSeen(d) {
		t.Fatal("repeated digest reported as first sight")
	}
}

// TestLocalMeshGossipExactlyOnceUnderFaults floods a duplicating,
// reordering in-process mesh with gossip-disseminated cars: with the
// origin retransmitting (the protocol's carRetransmit backstop), every
// peer must receive every car EXACTLY once at the protocol layer — the
// dedup memo absorbs link duplicates, relay overlap and retransmissions
// alike — and the relay/dup counters must advance.
func TestLocalMeshGossipExactlyOnceUnderFaults(t *testing.T) {
	const n, cars = 8, 24
	mesh := NewLocalMesh()
	mesh.Faults = NewLinkFaults(11).SetAll(LinkRule{DupP: 0.5, Jitter: 2 * time.Millisecond})
	cols := make([]*digestCounter, n)
	for i := range cols {
		cols[i] = newDigestCounter()
		mesh.AddNode(cols[i], time.Now())
	}
	mesh.EnableGossip(3, 17)
	mesh.Start()
	defer mesh.Stop()

	proposals := gossipCars(cars)
	covered := func() bool {
		for i := 1; i < n; i++ {
			if cols[i].distinct() < cars {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !covered() && time.Now().Before(deadline) {
		// Retransmission draws a fresh sample per car (gossip.go); peers
		// that already have the car dedup it.
		for _, p := range proposals {
			mesh.Loop(0).Broadcast(p)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !covered() {
		for i := 1; i < n; i++ {
			t.Logf("node %d: %d/%d cars", i, cols[i].distinct(), cars)
		}
		t.Fatal("gossip never covered the committee")
	}
	// One more full round: every target has every car now, so each send
	// lands in the dedup memo — duplicates must be dropped, not delivered.
	for _, p := range proposals {
		mesh.Loop(0).Broadcast(p)
	}
	time.Sleep(100 * time.Millisecond) // drain jittered in-flight copies

	for i := 1; i < n; i++ {
		if got := cols[i].distinct(); got != cars {
			t.Errorf("node %d received %d distinct cars, want %d", i, got, cars)
		}
		if max := cols[i].maxCount(); max != 1 {
			t.Errorf("node %d saw a car %d times, want exactly once", i, max)
		}
	}
	var relays, dups uint64
	for i := 0; i < n; i++ {
		c := mesh.Loop(types.NodeID(i)).Counters()
		relays += c.GossipRelays
		dups += c.GossipDupDrops
	}
	if relays == 0 {
		t.Error("no gossip relays recorded")
	}
	if dups == 0 {
		t.Error("no gossip dup-drops recorded despite duplicating links and retransmission")
	}
}

// TestTCPMeshGossipExactlyOnce runs fanout-2 gossip over real sockets:
// the origin's car reaches every peer exactly once (readLoop dedup),
// with relays carrying part of the dissemination.
func TestTCPMeshGossipExactlyOnce(t *testing.T) {
	const n, cars = 4, 12
	ports := freePorts(t, n)
	addrs := make(map[types.NodeID]string, n)
	for i, a := range ports {
		addrs[types.NodeID(i)] = a
	}
	epoch := time.Now()
	cols := make([]*digestCounter, n)
	meshes := make([]*TCPMesh, n)
	for i := 0; i < n; i++ {
		cols[i] = newDigestCounter()
		meshes[i] = NewTCPMesh(types.NodeID(i), addrs, cols[i], epoch, nil)
		meshes[i].EnableGossip(2, 23+uint64(i)*0x9e3779b97f4a7c15)
		if err := meshes[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer meshes[i].Stop()
	}

	proposals := gossipCars(cars)
	covered := func() bool {
		for i := 1; i < n; i++ {
			if cols[i].distinct() < cars {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !covered() && time.Now().Before(deadline) {
		for _, p := range proposals {
			meshes[0].Broadcast(0, p)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !covered() {
		t.Fatal("gossip never covered the committee over TCP")
	}
	// A final round against fully-covered peers: all dedup drops.
	for _, p := range proposals {
		meshes[0].Broadcast(0, p)
	}
	time.Sleep(200 * time.Millisecond)

	for i := 1; i < n; i++ {
		if got := cols[i].distinct(); got != cars {
			t.Errorf("node %d received %d distinct cars, want %d", i, got, cars)
		}
		if max := cols[i].maxCount(); max != 1 {
			t.Errorf("node %d saw a car %d times, want exactly once", i, max)
		}
	}
	if origin := meshes[0].Loop().Counters().GossipOrigin; origin == 0 {
		t.Error("origin counter never advanced")
	}
	var relays, dups uint64
	for i := 0; i < n; i++ {
		c := meshes[i].Loop().Counters()
		relays += c.GossipRelays
		dups += c.GossipDupDrops
	}
	if relays == 0 {
		t.Error("no relays recorded: fanout-2 at n=4 must lean on relays for coverage")
	}
	if dups == 0 {
		t.Error("no dup-drops recorded despite a full retransmission round")
	}
}
