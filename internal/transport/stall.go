// Peer liveness: stall detection and jittered redial backoff for the
// TCP mesh.
//
// A wedged peer — one that keeps its TCP sessions open but stops
// reading or sending — is indistinguishable from a merely slow peer at
// the socket layer: writes eventually block in the kernel buffer,
// reads simply never return, and nothing errors. The stall detector
// makes the distinction with progress timestamps: if we have been
// sending to a peer but have heard nothing back for a full stall
// timeout (or an egress write has been blocked that long), the
// connections are torn down from outside, which fails the wedged
// writer and bounces the writeLoop into a redial. A healthy-but-idle
// peer never trips it, because we are not sending to it either.
//
// The redial backoff is jittered and seeded per (self, peer, plane):
// after a full-cluster restart every writer draws a different delay
// sequence, so recovered peers see a spread of reconnection attempts
// instead of a synchronized herd, while any single writer still backs
// off exponentially to the same cap as before.
package transport

import (
	"math/rand/v2"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// Redial backoff shape: exponential from backoffBase to backoffCap with
// uniform jitter in [d/2, 3d/2). The delay resets to the base only
// after a connection survives backoffResetAfter — a peer that accepts
// and immediately dies keeps the delay growing instead of resetting it
// on every doomed dial.
const (
	backoffBase       = 100 * time.Millisecond
	backoffCap        = 5 * time.Second
	backoffResetAfter = 2 * time.Second
)

// dialBackoff is one writer's redial schedule. Not safe for concurrent
// use; each writeLoop owns its own.
type dialBackoff struct {
	rng *rand.Rand
	cur time.Duration
}

func newDialBackoff(seed uint64) *dialBackoff {
	return &dialBackoff{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		cur: backoffBase,
	}
}

// next returns the delay to sleep before the upcoming dial attempt —
// uniform in [cur/2, 3cur/2) — and doubles cur toward the cap.
func (b *dialBackoff) next() time.Duration {
	d := b.cur
	jittered := d/2 + time.Duration(b.rng.Int64N(int64(d)))
	if b.cur < backoffCap {
		b.cur *= 2
		if b.cur > backoffCap {
			b.cur = backoffCap
		}
	}
	return jittered
}

// noteSuccess records that a connection survived for `alive` before
// failing; a long-enough life resets the schedule to the base delay.
func (b *dialBackoff) noteSuccess(alive time.Duration) {
	if alive >= backoffResetAfter {
		b.cur = backoffBase
	}
}

// backoffSeed derives a per-(self, peer, plane) jitter seed with a
// splitmix-style finalizer, so every writer in the cluster — across
// processes, not just within one — walks a different delay sequence.
func backoffSeed(self, to types.NodeID, plane int) uint64 {
	x := uint64(self)<<32 | uint64(to)<<8 | uint64(plane)
	x ^= 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sleepBackoff sleeps for the backoff's next delay, returning false if
// the mesh stopped first.
func (m *TCPMesh) sleepBackoff(bo *dialBackoff) bool {
	select {
	case <-m.stopped:
		return false
	case <-time.After(bo.next()):
		return true
	}
}

// unknownPeer keys inbound connections that have not completed the
// handshake yet (NodeIDs are committee indices, far below this).
const unknownPeer = types.NodeID(0xffff)

// peerHealth is one peer's liveness progress, shared by both planes'
// streams and that peer's readLoops. Timestamps are wall-clock unix
// nanoseconds; zero means "never".
type peerHealth struct {
	lastRecv atomic.Int64 // last frame received from the peer
	lastSend atomic.Int64 // last successful egress flush to the peer
	lastDrop atomic.Int64 // last stall teardown by the monitor
}

// SetStallTimeout arms the stall detector: a peer we are sending to
// that makes no receive progress for d (or holds an egress write
// blocked for d) gets its connections torn down and redialed. Call
// before Start; zero (the default) disables detection entirely,
// preserving the previous transport behavior.
func (m *TCPMesh) SetStallTimeout(d time.Duration) { m.stallTimeout = d }

// healthFor returns (creating if needed) a peer's liveness block.
func (m *TCPMesh) healthFor(id types.NodeID) *peerHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthForLocked(id)
}

func (m *TCPMesh) healthForLocked(id types.NodeID) *peerHealth {
	h, ok := m.health[id]
	if !ok {
		h = &peerHealth{}
		m.health[id] = h
	}
	return h
}

// setConn registers the stream's active outbound connection so the
// stall monitor (and Stop) can sever it from outside.
func (st *stream) setConn(conn net.Conn) {
	st.connMu.Lock()
	st.conn = conn
	st.connSince = time.Now()
	st.connMu.Unlock()
}

// clearConn deregisters the connection (the writeLoop is about to close
// it itself).
func (st *stream) clearConn() {
	st.connMu.Lock()
	st.conn = nil
	st.writeStart.Store(0)
	st.connMu.Unlock()
}

// closeConn severs the registered connection without deregistering it:
// the owning writeLoop observes the write/read failure and runs its own
// clearConn. Safe to call with no connection registered.
func (st *stream) closeConn() {
	st.connMu.Lock()
	conn := st.conn
	st.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// connAge reports how long the registered outbound connection has been
// up (false if none).
func (st *stream) connAge(now time.Time) (time.Duration, bool) {
	st.connMu.Lock()
	defer st.connMu.Unlock()
	if st.conn == nil {
		return 0, false
	}
	return now.Sub(st.connSince), true
}

// stallMonitor periodically sweeps peers for stalls. Runs only when
// SetStallTimeout armed it.
func (m *TCPMesh) stallMonitor() {
	interval := m.stallTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopped:
			return
		case <-t.C:
			m.checkStalls()
		}
	}
}

// checkStalls tears down the connections of every stalled peer. A peer
// is stalled when an outbound connection has been up longer than the
// stall timeout (grace for fresh reconnects) AND either:
//
//   - we sent to it more recently than we heard from it, and the
//     silence has lasted a full timeout (lastSend > lastRecv rules out
//     idle-but-healthy peers: if we are not talking to it, its silence
//     means nothing), or
//   - an egress write has been blocked inside WriteTo for a full
//     timeout — the wedged-reader signature, visible even when
//     lastSend cannot advance because no flush completes.
//
// The remedy severs the peer's outbound connections (failing any
// blocked writer, sending the writeLoops to a backed-off redial) and
// its inbound ones (a half-dead session is not worth trusting), and
// bumps the peer's Stalls counter.
//
// Each teardown closes the stall *episode*: progress is measured
// against max(lastRecv, lastDrop), so the same silence is never
// re-declared sweep after sweep. A parked writeLoop only notices its
// severed connection on the next outbound frame — until then the dead
// conn stays registered with growing age and stale timestamps, and
// without the episode cut the monitor would flap forever on an idle
// cluster, repeatedly closing the (healthy) peer's fresh inbound
// connections. Re-declaring requires evidence from after the remedy: a
// successful egress flush (lastSend > lastDrop) followed by a full
// timeout of silence, or a newly wedged write.
func (m *TCPMesh) checkStalls() {
	now := time.Now()
	timeout := m.stallTimeout
	m.mu.Lock()
	type target struct {
		id      types.NodeID
		health  *peerHealth
		streams []*stream
	}
	var victims []target
	for id, pc := range m.conns {
		h := m.healthForLocked(id)
		progress := max(h.lastRecv.Load(), h.lastDrop.Load())
		lastSend := h.lastSend.Load()
		stalled := false
		aged := false
		for _, st := range pc.streams {
			age, ok := st.connAge(now)
			if !ok || age < timeout {
				continue
			}
			aged = true
			if ws := st.writeStart.Load(); ws != 0 && now.UnixNano()-ws > int64(timeout) {
				stalled = true // write wedged in the kernel buffer
			}
		}
		if aged && !stalled {
			silent := progress == 0 || now.UnixNano()-progress > int64(timeout)
			talking := lastSend > progress
			stalled = talking && silent
		}
		if stalled {
			victims = append(victims, target{id: id, health: h, streams: pc.streams[:]})
		}
	}
	// Collect each victim's inbound connections while still locked.
	inbound := make(map[types.NodeID][]net.Conn)
	for _, v := range victims {
		for conn, id := range m.inbound {
			if id == v.id {
				inbound[v.id] = append(inbound[v.id], conn)
			}
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		m.logger.Printf("transport: peer %s stalled (no progress in %v): tearing down connections", v.id, timeout)
		m.statsFor(v.id).Stalls.Add(1)
		v.health.lastDrop.Store(now.UnixNano())
		for _, st := range v.streams {
			st.closeConn()
		}
		for _, conn := range inbound[v.id] {
			conn.Close()
		}
	}
}
