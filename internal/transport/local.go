package transport

import (
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// LocalMesh connects n loops inside one process: messages pass by pointer
// with optional injected delay, giving examples and integration tests a
// real-time cluster without sockets.
type LocalMesh struct {
	loops []*Loop
	// Delay, if set, adds a fixed artificial latency to every delivery
	// (rough WAN emulation for demos).
	Delay time.Duration
	// Faults, if set, injects drop/delay/duplicate/reorder per peer and
	// plane into every delivery (see LinkFaults; the plane is derived
	// from the message type exactly as the TCP mesh does). Set before
	// Start.
	Faults *LinkFaults
}

// NewLocalMesh builds an empty mesh; attach loops with AddNode.
func NewLocalMesh() *LocalMesh { return &LocalMesh{} }

// AddNode creates a loop for proto wired to this mesh. Nodes must be
// added in ID order before Start.
func (m *LocalMesh) AddNode(proto runtime.Protocol, epoch time.Time) *Loop {
	l := NewLoop(types.NodeID(len(m.loops)), proto, m, epoch)
	m.loops = append(m.loops, l)
	return l
}

// Loop returns the loop for a replica.
func (m *LocalMesh) Loop(id types.NodeID) *Loop { return m.loops[id] }

// Start launches every loop goroutine.
func (m *LocalMesh) Start() {
	for _, l := range m.loops {
		go l.Run()
	}
}

// Stop terminates every loop.
func (m *LocalMesh) Stop() {
	for _, l := range m.loops {
		l.Stop()
	}
}

// Send implements Sender.
func (m *LocalMesh) Send(from, to types.NodeID, msg types.Message) {
	if int(to) >= len(m.loops) {
		return
	}
	target := m.loops[to]
	delay := m.Delay
	copies := 1
	if m.Faults != nil && from != to {
		v := m.Faults.decide(to, planeOf(msg.Type()))
		if v.drop {
			return
		}
		copies = v.copies
		delay += v.delay
	}
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { target.Deliver(from, msg) })
		} else {
			target.Deliver(from, msg)
		}
	}
}

// Broadcast implements Sender.
func (m *LocalMesh) Broadcast(from types.NodeID, msg types.Message) {
	for _, l := range m.loops {
		if l.id == from {
			continue
		}
		m.Send(from, l.id, msg)
	}
}
