package transport

import (
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// LocalMesh connects n loops inside one process: messages pass by pointer
// with optional injected delay, giving examples and integration tests a
// real-time cluster without sockets.
type LocalMesh struct {
	loops []*Loop
	// egress[i] counts node i's outbound bytes per plane (message
	// WireSize, counted once per Send, faults excluded) — the in-process
	// stand-in for the TCP mesh's plane byte counters, so bandwidth
	// claims (gossip's O(k) vs full mesh's O(n) data plane) are
	// assertable on LiveCluster benchmarks too.
	egress []*nodeEgress
	// gossip[i] is node i's relay state when gossip is enabled (nil
	// otherwise); ids is the full committee, the sample space.
	gossip []*gossipState
	ids    []types.NodeID
	// Delay, if set, adds a fixed artificial latency to every delivery
	// (rough WAN emulation for demos).
	Delay time.Duration
	// Faults, if set, injects drop/delay/duplicate/reorder per peer and
	// plane into every delivery (see LinkFaults; the plane is derived
	// from the message type exactly as the TCP mesh does). Set before
	// Start.
	Faults *LinkFaults
}

type nodeEgress struct {
	control atomic.Uint64
	data    atomic.Uint64
}

// NewLocalMesh builds an empty mesh; attach loops with AddNode.
func NewLocalMesh() *LocalMesh { return &LocalMesh{} }

// AddNode creates a loop for proto wired to this mesh. Nodes must be
// added in ID order before Start.
func (m *LocalMesh) AddNode(proto runtime.Protocol, epoch time.Time) *Loop {
	l := NewLoop(types.NodeID(len(m.loops)), proto, m, epoch)
	m.loops = append(m.loops, l)
	m.egress = append(m.egress, &nodeEgress{})
	m.ids = append(m.ids, l.id)
	return l
}

// EnableGossip switches car dissemination to fanout-k gossip (the
// LocalMesh twin of TCPMesh.EnableGossip): origins send each car to a
// random k-sample, receivers relay on first sight. Call after every
// AddNode, before Start. Each node's sampler is independently seeded so
// relay graphs differ per node as they would across processes.
func (m *LocalMesh) EnableGossip(fanout int, seed uint64) {
	m.gossip = make([]*gossipState, len(m.loops))
	for i := range m.gossip {
		m.gossip[i] = newGossipState(fanout, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
}

// PlaneBytes returns node id's cumulative outbound bytes on the control
// and data planes (relays included — each gossip hop is that node's own
// egress, which is exactly the cost gossip redistributes).
func (m *LocalMesh) PlaneBytes(id types.NodeID) (control, data uint64) {
	e := m.egress[id]
	return e.control.Load(), e.data.Load()
}

// Loop returns the loop for a replica.
func (m *LocalMesh) Loop(id types.NodeID) *Loop { return m.loops[id] }

// Start launches every loop goroutine.
func (m *LocalMesh) Start() {
	for _, l := range m.loops {
		go l.Run()
	}
}

// Stop terminates every loop.
func (m *LocalMesh) Stop() {
	for _, l := range m.loops {
		l.Stop()
	}
}

// Send implements Sender.
func (m *LocalMesh) Send(from, to types.NodeID, msg types.Message) {
	if int(to) >= len(m.loops) {
		return
	}
	if from != to && int(from) < len(m.egress) {
		e := m.egress[from]
		if planeOf(msg.Type()) == planeData {
			e.data.Add(uint64(msg.WireSize()))
		} else {
			e.control.Add(uint64(msg.WireSize()))
		}
	}
	delay := m.Delay
	copies := 1
	if m.Faults != nil && from != to {
		v := m.Faults.decide(to, planeOf(msg.Type()))
		if v.drop {
			return
		}
		copies = v.copies
		delay += v.delay
	}
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { m.deliver(from, to, msg) })
		} else {
			m.deliver(from, to, msg)
		}
	}
}

// deliver is the receive side of Send: with gossip enabled, inbound cars
// dedup (relay-once) and relay to a fresh sample before delivery —
// inside the delayed-fault callback too, since relays happen when a
// frame ARRIVES. LinkFaults and byte counters apply per hop (each relay
// is a fresh Send).
func (m *LocalMesh) deliver(from, to types.NodeID, msg types.Message) {
	if m.gossip != nil && from != to {
		if p, ok := msg.(*types.Proposal); ok {
			g := m.gossip[to]
			if !g.firstSeen(p.Digest()) {
				m.loops[to].ctrs.GossipDupDrops.Add(1)
				return
			}
			targets := g.sample(m.ids, func(id types.NodeID) bool {
				return id == to || id == from || id == p.Lane
			})
			m.loops[to].ctrs.GossipRelays.Add(1)
			for _, t := range targets {
				m.Send(to, t, msg)
			}
		}
	}
	m.loops[to].Deliver(from, msg)
}

// Broadcast implements Sender. With gossip enabled, cars go to a
// fanout-k sample instead of every peer (relays complete the coverage);
// retransmissions re-enter here and draw a fresh sample.
func (m *LocalMesh) Broadcast(from types.NodeID, msg types.Message) {
	if m.gossip != nil && msg.Type() == types.MsgProposal {
		if p, ok := msg.(*types.Proposal); ok {
			g := m.gossip[from]
			g.firstSeen(p.Digest()) // own cars: drop stray relay-backs
			targets := g.sample(m.ids, func(id types.NodeID) bool { return id == from })
			m.loops[from].ctrs.GossipOrigin.Add(1)
			for _, t := range targets {
				m.Send(from, t, msg)
			}
			return
		}
	}
	for _, l := range m.loops {
		if l.id == from {
			continue
		}
		m.Send(from, l.id, msg)
	}
}
