package transport

import (
	"testing"
	"time"

	"repro/internal/types"
)

// BenchmarkEgressFrameEncode is the transport's per-message egress cost
// up to the peer queues: pooled encode, length prefix, refcounted frame,
// release. Steady state must be allocation-free (the legacy path paid
// one encode buffer plus one frame copy per message — see
// wire.BenchmarkEgressEncodeLegacy).
func BenchmarkEgressFrameEncode(b *testing.B) {
	m := NewTCPMesh(0, map[types.NodeID]string{0: "127.0.0.1:0"}, &collector{}, time.Now(), nil)
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := m.encodeFrame(v)
		if f == nil {
			b.Fatal("encode failed")
		}
		f.release()
	}
}

// BenchmarkEgressBroadcastFrame measures a 4-peer broadcast's egress
// cost: one shared pooled frame, four queue handoffs (queues drained by
// nothing — frames dropped and released once full, mimicking saturated
// peers without paying loopback I/O in the benchmark).
func BenchmarkEgressBroadcastFrame(b *testing.B) {
	addrs := map[types.NodeID]string{}
	for i := 0; i < 4; i++ {
		// Unroutable peers: writers stay parked in dial backoff.
		addrs[types.NodeID(i)] = "127.0.0.1:1"
	}
	m := NewTCPMesh(0, addrs, &collector{}, time.Now(), nil)
	defer m.Stop()
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Broadcast(0, v)
	}
}

// BenchmarkEgressSendLoopback is the full egress→ingress path over real
// TCP loopback: pooled encode, coalesced writev, frame decode, delivery.
func BenchmarkEgressSendLoopback(b *testing.B) {
	ports := freePorts(b, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	recv := &orderCollector{}
	ma := NewTCPMesh(0, addrs, &collector{}, epoch, nil)
	mb := NewTCPMesh(1, addrs, recv, epoch, nil)
	if err := ma.Start(); err != nil {
		b.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		b.Fatal(err)
	}
	defer mb.Stop()

	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ma.Send(0, 1, v)
		if i%1024 == 1023 { // keep the queue from overflowing into drops
			waitDelivered(b, recv, i+1)
		}
	}
	waitDelivered(b, recv, b.N)
	b.StopTimer()
	st := ma.PeerStats()[1]
	if st.Control.Flushes > 0 {
		b.ReportMetric(float64(st.Control.Frames)/float64(st.Control.Flushes), "frames/flush")
	}
}

func waitDelivered(b *testing.B, recv *orderCollector, n int) {
	deadline := time.Now().Add(30 * time.Second)
	for len(recv.snapshot()) < n {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d", len(recv.snapshot()), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
