package transport

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wire"
)

// nopSender discards outbound traffic (pipeline tests are inbound-only).
type nopSender struct{}

func (nopSender) Send(_, _ types.NodeID, _ types.Message)   {}
func (nopSender) Broadcast(_ types.NodeID, _ types.Message) {}

// pipelineProto is a Protocol+PreVerifier whose PreVerify burns a
// variable amount of CPU (so completion order scrambles across workers)
// and rejects votes at positions divisible by rejectEvery.
type pipelineProto struct {
	rejectEvery types.Pos

	mu    sync.Mutex
	seen  map[types.NodeID][]types.Pos
	total int
}

func (p *pipelineProto) Init(runtime.Context) {}
func (p *pipelineProto) OnMessage(_ runtime.Context, from types.NodeID, m types.Message) {
	v := m.(*types.Vote)
	p.mu.Lock()
	p.seen[from] = append(p.seen[from], v.Position)
	p.total++
	p.mu.Unlock()
}
func (p *pipelineProto) OnTimer(runtime.Context, runtime.TimerTag)   {}
func (p *pipelineProto) OnClientBatch(runtime.Context, *types.Batch) {}

func (p *pipelineProto) PreVerify(from types.NodeID, m types.Message) error {
	v, ok := m.(*types.Vote)
	if !ok {
		return nil
	}
	// Variable work: later positions sometimes finish long before earlier
	// ones on another worker, which is exactly what the per-peer FIFO
	// stage must mask.
	rounds := int(v.Position % 7)
	sum := sha256.Sum256([]byte{byte(v.Position)})
	for i := 0; i < rounds*50; i++ {
		sum = sha256.Sum256(sum[:])
	}
	if p.rejectEvery != 0 && v.Position%p.rejectEvery == 0 {
		return fmt.Errorf("forged vote at %d", v.Position)
	}
	return nil
}

func (p *pipelineProto) counts() (int, map[types.NodeID][]types.Pos) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := make(map[types.NodeID][]types.Pos, len(p.seen))
	for k, v := range p.seen {
		cp[k] = append([]types.Pos(nil), v...)
	}
	return p.total, cp
}

// TestVerifyPoolPreservesPerPeerFIFO floods one loop through the
// parallel pre-verification stage from several peers at once (run with
// -race) and asserts that every surviving message is delivered, in
// per-peer FIFO order, with every invalid message dropped.
func TestVerifyPoolPreservesPerPeerFIFO(t *testing.T) {
	const peers, perPeer = 4, 1500
	const rejectEvery = 101
	proto := &pipelineProto{rejectEvery: rejectEvery, seen: make(map[types.NodeID][]types.Pos)}
	l := NewLoop(0, proto, nopSender{}, time.Now())
	if l.pool == nil {
		t.Fatal("loop did not detect the PreVerifier protocol")
	}
	l.SetVerifyWorkers(4)
	go l.Run()
	defer l.Stop()

	var wg sync.WaitGroup
	for peer := 1; peer <= peers; peer++ {
		wg.Add(1)
		go func(peer types.NodeID) {
			defer wg.Done()
			for i := 1; i <= perPeer; i++ {
				l.Deliver(peer, &types.Vote{Lane: 0, Position: types.Pos(i), Voter: peer})
			}
		}(types.NodeID(peer))
	}
	wg.Wait()

	rejected := perPeer / rejectEvery // positions 101, 202, ... per peer
	want := peers * (perPeer - rejected)
	deadline := time.Now().Add(10 * time.Second)
	for {
		total, _ := proto.counts()
		if total >= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	total, seen := proto.counts()
	if total != want {
		t.Fatalf("delivered %d messages, want %d", total, want)
	}
	for peer, positions := range seen {
		if len(positions) != perPeer-rejected {
			t.Fatalf("peer %s: %d delivered, want %d", peer, len(positions), perPeer-rejected)
		}
		prev := types.Pos(0)
		for i, pos := range positions {
			if pos%rejectEvery == 0 {
				t.Fatalf("peer %s: rejected position %d was delivered", peer, pos)
			}
			if pos <= prev {
				t.Fatalf("peer %s: FIFO violated at index %d: %d after %d", peer, i, pos, prev)
			}
			prev = pos
		}
	}
}

// TestVerifyPoolSelfDeliveryBypasses checks that a loop's own messages
// skip pre-verification (a replica does not verify its own signatures).
func TestVerifyPoolSelfDeliveryBypasses(t *testing.T) {
	proto := &pipelineProto{rejectEvery: 1, seen: make(map[types.NodeID][]types.Pos)} // rejects everything
	l := NewLoop(0, proto, nopSender{}, time.Now())
	go l.Run()
	defer l.Stop()
	l.Deliver(0, &types.Vote{Lane: 0, Position: 5, Voter: 0})
	deadline := time.Now().Add(5 * time.Second)
	for {
		total, _ := proto.counts()
		if total == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("self delivery never reached the protocol")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPMeshClosesOversizedFrame sends a hostile length prefix (beyond
// wire.MaxFrame) and asserts the mesh closes the connection instead of
// allocating the claimed buffer.
func TestTCPMeshClosesOversizedFrame(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]} // 1 never started
	c := &collector{}
	m := NewTCPMesh(0, addrs, c, time.Now(), nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	conn, err := net.Dial("tcp", ports[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handshake as peer 1 (control plane), then claim a 256 MB frame.
	var hdr [7]byte
	binary.LittleEndian.PutUint16(hdr[:2], 1)
	hdr[2] = 0 // plane byte
	binary.LittleEndian.PutUint32(hdr[3:], 256<<20)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection not closed on hostile frame: read err = %v", err)
	}
	if c.count() != 0 {
		t.Fatal("hostile frame produced a delivery")
	}
}

// TestTCPMeshRejectsUnknownHandshake asserts a connection claiming a
// non-committee ID is closed before any per-peer state is allocated.
func TestTCPMeshRejectsUnknownHandshake(t *testing.T) {
	ports := freePorts(t, 1)
	addrs := map[types.NodeID]string{0: ports[0]}
	c := &collector{}
	m := NewTCPMesh(0, addrs, c, time.Now(), nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	conn, err := net.Dial("tcp", ports[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [3]byte
	binary.LittleEndian.PutUint16(hello[:2], 9999)
	hello[2] = 0 // plane byte
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection not closed on unknown handshake id: read err = %v", err)
	}
}

// TestFrameLimitAlignedWithWire pins the transport limit to the codec's.
func TestFrameLimitAlignedWithWire(t *testing.T) {
	if maxFrame != wire.MaxFrame {
		t.Fatalf("transport maxFrame %d != wire.MaxFrame %d", int64(maxFrame), int64(wire.MaxFrame))
	}
}
