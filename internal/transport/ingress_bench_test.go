package transport

import (
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

// Ingress counterpart of egress_bench_test.go: the decode side of the
// hot path. PR 3 drove egress to 0 allocs/op; these benchmarks (and the
// TestIngressDecodeAllocs regression gate) pin the zero-copy ingress
// decode introduced alongside the sharded data plane.

// benchVote is a realistic control-plane frame (the most frequent
// message type under load).
func benchVote() []byte {
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	enc, err := wire.Encode(v)
	if err != nil {
		panic(err)
	}
	return enc
}

// benchProposal is a realistic data-plane frame: a car carrying txCount
// transactions of txSize bytes, plus a parent PoA with 2 shares.
func benchProposal(txCount, txSize int) []byte {
	txs := make([]types.Transaction, txCount)
	for i := range txs {
		txs[i] = make(types.Transaction, txSize)
	}
	p := &types.Proposal{
		Lane:     1,
		Position: 7,
		Parent:   types.Digest{3},
		ParentPoA: &types.PoA{
			Lane: 1, Position: 6, Digest: types.Digest{3},
			Shares: []types.SigShare{
				{Signer: 0, Sig: make([]byte, 64)},
				{Signer: 2, Sig: make([]byte, 64)},
			},
		},
		Batch: types.NewBatch(1, 7, txs, 0),
		Sig:   make([]byte, 64),
	}
	enc, err := wire.Encode(p)
	if err != nil {
		panic(err)
	}
	return enc
}

// BenchmarkDecodeVoteCopy / BenchmarkDecodeVote compare the legacy
// copying decoder against the zero-copy one on a control frame.
func BenchmarkDecodeVoteCopy(b *testing.B) {
	enc := benchVote()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeVote(b *testing.B) {
	enc := benchVote()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeFrom(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeProposalCopy / BenchmarkDecodeProposal compare the
// decoders on a 500 KB car (1000 × 512-byte transactions, the paper's
// workload): the copying decoder pays one allocation plus a copy per
// transaction, the aliasing decoder a handful of fixed allocations.
func BenchmarkDecodeProposalCopy(b *testing.B) {
	enc := benchProposal(1000, 512)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeProposal(b *testing.B) {
	enc := benchProposal(1000, 512)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeFrom(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngressPath is the transport's per-frame ingress cost after
// the socket read: pooled frame, zero-copy decode, release on the drop
// path (steady-state recycling — the delivery path hands the frame to
// the protocol instead).
func BenchmarkIngressPath(b *testing.B) {
	enc := benchProposal(1000, 512)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := wire.GetFrame(len(enc))
		copy(fr.Data(), enc)
		if _, err := wire.DecodeFrom(fr.Data()); err != nil {
			b.Fatal(err)
		}
		fr.Release()
	}
}

// BenchmarkIngressLoopback is the full TCP ingress path under the
// sharded loop: mesh egress on one side, pooled frame + zero-copy decode
// + pre-verify-less delivery on the other.
func BenchmarkIngressLoopback(b *testing.B) {
	ports := freePorts(b, 2)
	addrs := map[types.NodeID]string{0: ports[0], 1: ports[1]}
	epoch := time.Now()
	recv := &orderCollector{}
	ma := NewTCPMesh(0, addrs, &collector{}, epoch, nil)
	mb := NewTCPMesh(1, addrs, recv, epoch, nil)
	if err := ma.Start(); err != nil {
		b.Fatal(err)
	}
	defer ma.Stop()
	if err := mb.Start(); err != nil {
		b.Fatal(err)
	}
	defer mb.Stop()
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma.Send(0, 1, v)
	}
	waitDelivered(b, recv, b.N)
}

// TestIngressDecodeAllocs is the allocation regression gate for the
// zero-copy decoder (AllocsPerRun is deterministic, so this can assert
// exact budgets where timing benchmarks cannot):
//
//   - a Vote decodes in ≤1 alloc/op (the message struct; its signature
//     aliases the frame)
//   - a 1000-tx car decodes in ≤6 fixed allocs — independent of the
//     transaction count (the legacy copying path paid >1000)
func TestIngressDecodeAllocs(t *testing.T) {
	vote := benchVote()
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := wire.DecodeFrom(vote); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Fatalf("vote DecodeFrom: %.1f allocs/op, budget 1", allocs)
	}

	prop := benchProposal(1000, 512)
	allocsBig := testing.AllocsPerRun(50, func() {
		if _, err := wire.DecodeFrom(prop); err != nil {
			t.Fatal(err)
		}
	})
	if allocsBig > 6 {
		t.Fatalf("1000-tx proposal DecodeFrom: %.1f allocs/op, budget 6", allocsBig)
	}
	// The budget must not scale with payload size: 4x the transactions,
	// same fixed allocation count.
	prop4k := benchProposal(4000, 512)
	allocs4k := testing.AllocsPerRun(20, func() {
		if _, err := wire.DecodeFrom(prop4k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs4k > allocsBig+1 {
		t.Fatalf("alloc count scales with tx count: %.1f (1000 txs) vs %.1f (4000 txs)", allocsBig, allocs4k)
	}
}
