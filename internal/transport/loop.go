// Package transport runs protocol nodes in real time: each replica is an
// event loop goroutine that serializes message deliveries, timer firings
// and client submissions, satisfying the runtime.Protocol single-threaded
// contract. Two meshes are provided: an in-process bus (local.go) for
// single-binary clusters and examples, and a TCP mesh (tcp.go) with
// length-framed wire encoding for real deployments.
package transport

import (
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// Sender abstracts the outbound half of a mesh.
type Sender interface {
	Send(from, to types.NodeID, m types.Message)
	Broadcast(from types.NodeID, m types.Message)
}

// event is one serialized unit of work for a node loop.
type event struct {
	kind  uint8 // 0 deliver, 1 timer, 2 batch, 3 stop
	from  types.NodeID
	msg   types.Message
	tag   runtime.TimerTag
	epoch uint64
	batch *types.Batch
}

// Loop drives one protocol instance in real time.
type Loop struct {
	id     types.NodeID
	proto  runtime.Protocol
	sender Sender
	start  time.Time
	events chan event

	mu     sync.Mutex
	epochs map[runtime.TimerTag]uint64
	timers map[runtime.TimerTag]*time.Timer

	rng     *rand.Rand
	stopped chan struct{}
	done    chan struct{} // closed when Run returns
	once    sync.Once

	// pool is the parallel pre-verification stage (nil when the protocol
	// does not implement runtime.PreVerifier): inbound peer messages are
	// signature-checked across a bounded worker pool before they reach
	// the event queue, preserving per-peer FIFO delivery order.
	pool *verifyPool

	// flusher is non-nil when the protocol defers gated effects (group
	// commit): Run calls it after Init and after each event burst.
	flusher runtime.Flusher
}

// maxBurst bounds how many consecutively available events Run processes
// before calling the protocol's Flush hook: larger bursts amortize the
// group-commit barrier (one journal sync covers the whole burst's
// records) at the cost of holding gated sends longer under saturation.
const maxBurst = 64

// queueDepth bounds a loop's inbox; overload drops oldest-style by
// blocking briefly then discarding (protocols tolerate loss).
const queueDepth = 1 << 14

// NewLoop builds a loop for one replica. Call Run to start it. When proto
// implements runtime.PreVerifier, inbound peer messages pass through the
// parallel pre-verification stage before entering the event queue.
func NewLoop(id types.NodeID, proto runtime.Protocol, sender Sender, epoch time.Time) *Loop {
	l := &Loop{
		id:      id,
		proto:   proto,
		sender:  sender,
		start:   epoch,
		events:  make(chan event, queueDepth),
		epochs:  make(map[runtime.TimerTag]uint64),
		timers:  make(map[runtime.TimerTag]*time.Timer),
		rng:     rand.New(rand.NewPCG(uint64(id)+1, 0x51ab_2de1)),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if pv, ok := proto.(runtime.PreVerifier); ok {
		l.pool = newVerifyPool(pv, l.enqueueMessage, l.stopped)
	}
	if f, ok := proto.(runtime.Flusher); ok {
		l.flusher = f
	}
	return l
}

// SetVerifyWorkers overrides the pre-verification worker count (default
// GOMAXPROCS). Call before Start/Run; no-op without a pipeline.
func (l *Loop) SetVerifyWorkers(n int) {
	if l.pool != nil {
		l.pool.setWorkers(n)
	}
}

var _ runtime.Context = (*Loop)(nil)

// ID implements runtime.Context.
func (l *Loop) ID() types.NodeID { return l.id }

// Now implements runtime.Context (time since the deployment epoch).
func (l *Loop) Now() time.Duration { return time.Since(l.start) }

// Rand implements runtime.Context. Only the loop goroutine calls it.
func (l *Loop) Rand() uint64 { return l.rng.Uint64() }

// Send implements runtime.Context.
func (l *Loop) Send(to types.NodeID, m types.Message) { l.sender.Send(l.id, to, m) }

// Broadcast implements runtime.Context.
func (l *Loop) Broadcast(m types.Message) { l.sender.Broadcast(l.id, m) }

// SetTimer implements runtime.Context: one-shot, same-tag replaces.
func (l *Loop) SetTimer(d time.Duration, tag runtime.TimerTag) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochs[tag]++
	epoch := l.epochs[tag]
	if t, ok := l.timers[tag]; ok {
		t.Stop()
	}
	l.timers[tag] = time.AfterFunc(d, func() {
		select {
		case l.events <- event{kind: 1, tag: tag, epoch: epoch}:
		case <-l.stopped:
		}
	})
}

// CancelTimer implements runtime.Context.
func (l *Loop) CancelTimer(tag runtime.TimerTag) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochs[tag]++
	if t, ok := l.timers[tag]; ok {
		t.Stop()
		delete(l.timers, tag)
	}
}

// Deliver enqueues an inbound message (mesh side). Drops on overload.
// With a pre-verification pipeline, peer messages are signature-checked
// on the worker pool first (self-deliveries skip it: a replica does not
// verify its own signatures).
func (l *Loop) Deliver(from types.NodeID, m types.Message) {
	if l.pool != nil && from != l.id {
		l.pool.submit(from, m)
		return
	}
	l.enqueueMessage(from, m)
}

// enqueueMessage places a (verified) message on the event queue.
func (l *Loop) enqueueMessage(from types.NodeID, m types.Message) {
	select {
	case l.events <- event{kind: 0, from: from, msg: m}:
	case <-l.stopped:
	default:
		// Inbox full: drop. Protocol retransmission recovers.
	}
}

// Submit enqueues a sealed client batch.
func (l *Loop) Submit(b *types.Batch) {
	select {
	case l.events <- event{kind: 2, batch: b}:
	case <-l.stopped:
	}
}

// Run processes events until Stop; call in a dedicated goroutine.
// Consecutively available events are handled in bursts of up to maxBurst
// before the protocol's Flush hook (if any) runs, so a group-commit
// protocol amortizes one durability barrier over the whole burst.
func (l *Loop) Run() {
	defer close(l.done)
	l.proto.Init(l)
	l.flush()
	for {
		select {
		case <-l.stopped:
			return
		case ev := <-l.events:
			if l.handle(ev) {
				return
			}
		burst:
			for n := 1; n < maxBurst; n++ {
				select {
				case next := <-l.events:
					if l.handle(next) {
						return
					}
				default:
					break burst
				}
			}
			l.flush()
		}
	}
}

// handle processes one event; it reports whether the loop must stop.
func (l *Loop) handle(ev event) (stop bool) {
	switch ev.kind {
	case 0:
		l.proto.OnMessage(l, ev.from, ev.msg)
	case 1:
		l.mu.Lock()
		live := l.epochs[ev.tag] == ev.epoch
		if live {
			delete(l.timers, ev.tag)
		}
		l.mu.Unlock()
		if live {
			l.proto.OnTimer(l, ev.tag)
		}
	case 2:
		l.proto.OnClientBatch(l, ev.batch)
	case 3:
		return true
	}
	return false
}

func (l *Loop) flush() {
	if l.flusher != nil {
		l.flusher.Flush(l)
	}
}

// Stop terminates the loop.
func (l *Loop) Stop() {
	l.once.Do(func() { close(l.stopped) })
}

// Join blocks until Run has returned — i.e. no handler is in flight and
// none will start. Only valid after Run was started; callers tearing
// down resources the protocol writes to (e.g. a journal) must Join
// between Stop and the teardown.
func (l *Loop) Join() { <-l.done }
