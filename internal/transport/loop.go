// Package transport runs protocol nodes in real time: each replica is an
// event loop goroutine that serializes message deliveries, timer firings
// and client submissions, satisfying the runtime.Protocol single-threaded
// contract. Two meshes are provided: an in-process bus (local.go) for
// single-binary clusters and examples, and a TCP mesh (tcp.go) with
// length-framed wire encoding for real deployments.
//
// Protocols that additionally implement runtime.Sharder get a parallel
// data plane: the loop spawns DataShards() worker goroutines and routes
// shardable messages (lane cars, lane votes, sync payloads for Autobahn)
// to them by ShardOf, preserving relative order within a shard, while
// everything else — consensus, certificates, timers — stays on the
// single serialized control loop.
package transport

import (
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wire"
)

// Sender abstracts the outbound half of a mesh.
type Sender interface {
	Send(from, to types.NodeID, m types.Message)
	Broadcast(from types.NodeID, m types.Message)
}

// event is one serialized unit of work for a node loop.
type event struct {
	kind  uint8 // 0 deliver, 1 timer, 2 batch, 3 stop
	from  types.NodeID
	msg   types.Message
	tag   runtime.TimerTag
	epoch uint64
	batch *types.Batch
	// frame backs msg's aliased payload slices (TCP ingress only; nil
	// for in-process meshes). Dropping the event before delivery must
	// Release it; delivering abandons the reference to the GC (the
	// protocol may retain aliased data indefinitely — see wire.Frame).
	frame *wire.Frame
}

// release returns the event's backing frame (if any) to the pool — only
// valid on paths that discard the event without delivering its message.
func (ev *event) release() {
	if ev.frame != nil {
		ev.frame.Release()
	}
}

// Loop drives one protocol instance in real time.
type Loop struct {
	id     types.NodeID
	proto  runtime.Protocol
	sender Sender
	start  time.Time
	events chan event

	mu     sync.Mutex
	epochs map[runtime.TimerTag]uint64
	timers map[runtime.TimerTag]*time.Timer

	rng     *rand.Rand
	stopped chan struct{}
	done    chan struct{} // closed when Run returns
	once    sync.Once

	// pool is the parallel pre-verification stage (nil when the protocol
	// does not implement runtime.PreVerifier): inbound peer messages are
	// signature-checked across a bounded worker pool before they reach
	// the event queue, preserving per-peer FIFO delivery order.
	pool *verifyPool

	// flusher is non-nil when the protocol defers gated effects (group
	// commit): Run calls it after Init and after each event burst.
	flusher runtime.Flusher

	// sharder is non-nil when the protocol exposes a parallel data plane
	// (runtime.Sharder with DataShards() > 1): shardQs[i] feeds shard
	// worker i, spawned by Run after Init. Shard workers share the
	// stopped signal; Join waits for them through shardsDone.
	sharder    runtime.Sharder
	shardQs    []chan event
	shardsDone sync.WaitGroup

	// ctrs counts accepted and dropped events per queue family — inbox
	// drops are otherwise silent (protocol retransmission hides them)
	// and overload would be invisible.
	ctrs metrics.LoopCounters
}

// maxBurst bounds how many consecutively available events a loop (and
// each shard worker) processes before calling the protocol's flush hook:
// larger bursts amortize the group-commit barrier (one journal sync
// covers the whole burst's records) at the cost of holding gated sends
// longer under saturation.
const maxBurst = 64

// queueDepth bounds a loop's inbox. On overload the *incoming* (newest)
// event is discarded — see enqueueMessage.
const queueDepth = 1 << 14

// shardQueueDepth bounds one data-plane shard's inbox. Data shards carry
// bulk payloads; a smaller bound sheds backlog sooner (retransmission
// and sync recover) instead of buffering gigabytes.
const shardQueueDepth = 1 << 12

// NewLoop builds a loop for one replica. Call Run to start it. When proto
// implements runtime.PreVerifier, inbound peer messages pass through the
// parallel pre-verification stage before entering the event queue; when
// it implements runtime.Sharder with DataShards() > 1, data-plane
// messages are dispatched to per-shard worker goroutines.
func NewLoop(id types.NodeID, proto runtime.Protocol, sender Sender, epoch time.Time) *Loop {
	l := &Loop{
		id:      id,
		proto:   proto,
		sender:  sender,
		start:   epoch,
		events:  make(chan event, queueDepth),
		epochs:  make(map[runtime.TimerTag]uint64),
		timers:  make(map[runtime.TimerTag]*time.Timer),
		rng:     rand.New(rand.NewPCG(uint64(id)+1, 0x51ab_2de1)),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if pv, ok := proto.(runtime.PreVerifier); ok {
		l.pool = newVerifyPool(pv, l.enqueueMessage, l.stopped)
	}
	if f, ok := proto.(runtime.Flusher); ok {
		l.flusher = f
	}
	if s, ok := proto.(runtime.Sharder); ok && s.DataShards() > 1 {
		l.sharder = s
		l.shardQs = make([]chan event, s.DataShards())
		for i := range l.shardQs {
			l.shardQs[i] = make(chan event, shardQueueDepth)
		}
	}
	return l
}

// SetVerifyWorkers overrides the pre-verification worker count (default
// GOMAXPROCS). Call before Start/Run; no-op without a pipeline.
func (l *Loop) SetVerifyWorkers(n int) {
	if l.pool != nil {
		l.pool.setWorkers(n)
	}
}

// Counters snapshots the loop's event/drop counters.
func (l *Loop) Counters() metrics.LoopSnapshot { return l.ctrs.Snapshot() }

var _ runtime.Context = (*Loop)(nil)

// ID implements runtime.Context.
func (l *Loop) ID() types.NodeID { return l.id }

// Now implements runtime.Context (time since the deployment epoch).
func (l *Loop) Now() time.Duration { return time.Since(l.start) }

// Rand implements runtime.Context. Only the loop goroutine calls it.
func (l *Loop) Rand() uint64 { return l.rng.Uint64() }

// Send implements runtime.Context.
func (l *Loop) Send(to types.NodeID, m types.Message) { l.sender.Send(l.id, to, m) }

// Broadcast implements runtime.Context.
func (l *Loop) Broadcast(m types.Message) { l.sender.Broadcast(l.id, m) }

// SetTimer implements runtime.Context: one-shot, same-tag replaces.
// Timer events always fire on the control loop.
func (l *Loop) SetTimer(d time.Duration, tag runtime.TimerTag) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochs[tag]++
	epoch := l.epochs[tag]
	if t, ok := l.timers[tag]; ok {
		t.Stop()
	}
	l.timers[tag] = time.AfterFunc(d, func() {
		select {
		case l.events <- event{kind: 1, tag: tag, epoch: epoch}:
		case <-l.stopped:
		}
	})
}

// CancelTimer implements runtime.Context.
func (l *Loop) CancelTimer(tag runtime.TimerTag) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochs[tag]++
	if t, ok := l.timers[tag]; ok {
		t.Stop()
		delete(l.timers, tag)
	}
}

// Deliver enqueues an inbound message (mesh side). Drops on overload.
// With a pre-verification pipeline, peer messages are signature-checked
// on the worker pool first (self-deliveries skip it: a replica does not
// verify its own signatures).
func (l *Loop) Deliver(from types.NodeID, m types.Message) {
	l.DeliverFramed(from, m, nil)
}

// DeliverFramed is Deliver for messages decoded zero-copy out of a
// pooled ingress frame (wire.DecodeFrom): the frame reference travels
// with the message and is released if any pipeline stage drops it before
// delivery. frame may be nil (in-process meshes pass messages by
// pointer).
func (l *Loop) DeliverFramed(from types.NodeID, m types.Message, frame *wire.Frame) {
	if l.pool != nil && from != l.id {
		l.pool.submit(from, m, frame)
		return
	}
	l.enqueueMessage(from, m, frame)
}

// enqueueMessage places a (verified) message on its destination queue:
// the control inbox, or — for a sharded protocol's data-plane traffic —
// the ShardOf shard's queue. When the destination is full the *incoming*
// message is discarded (newest-drop: the queued backlog is older but
// already ordered; protocol retransmission and sync recover the loss)
// and the corresponding drop counter is bumped.
func (l *Loop) enqueueMessage(from types.NodeID, m types.Message, frame *wire.Frame) {
	ev := event{kind: 0, from: from, msg: m, frame: frame}
	q := l.events
	accepted, dropped := &l.ctrs.ControlEvents, &l.ctrs.InboxDrops
	if l.sharder != nil {
		if s := l.sharder.ShardOf(from, m); s >= 0 {
			q = l.shardQs[s%len(l.shardQs)]
			accepted, dropped = &l.ctrs.ShardEvents, &l.ctrs.ShardDrops
		}
	}
	select {
	case q <- ev:
		accepted.Add(1)
	case <-l.stopped:
		ev.release()
	default:
		// Queue full: drop the incoming event, observably.
		dropped.Add(1)
		ev.release()
	}
}

// Submit enqueues a sealed client batch (to the own-lane shard when the
// protocol shards batch production, else to the control loop).
func (l *Loop) Submit(b *types.Batch) {
	q := l.events
	if l.sharder != nil {
		if s := l.sharder.BatchShard(); s >= 0 {
			q = l.shardQs[s%len(l.shardQs)]
		}
	}
	select {
	case q <- event{kind: 2, batch: b}:
	case <-l.stopped:
	}
}

// Run processes control events until Stop; call in a dedicated goroutine.
// Consecutively available events are handled in bursts of up to maxBurst
// before the protocol's Flush hook (if any) runs, so a group-commit
// protocol amortizes one durability barrier over the whole burst. Shard
// workers (for a runtime.Sharder protocol) are spawned here, strictly
// after Init returns, and follow the same burst/flush pattern with
// FlushShard.
func (l *Loop) Run() {
	defer close(l.done)
	l.proto.Init(l)
	l.flush()
	for i := range l.shardQs {
		l.shardsDone.Add(1)
		go l.runShard(i)
	}
	for {
		select {
		case <-l.stopped:
			return
		case ev := <-l.events:
			if l.handle(ev) {
				return
			}
		burst:
			for n := 1; n < maxBurst; n++ {
				select {
				case next := <-l.events:
					if l.handle(next) {
						return
					}
				default:
					break burst
				}
			}
			l.flush()
		}
	}
}

// runShard drives one data-plane worker: same burst shape as Run, with
// the per-shard flush hook releasing shard-deferred effects.
func (l *Loop) runShard(shard int) {
	defer l.shardsDone.Done()
	ctx := &shardCtx{
		loop: l,
		rng:  rand.New(rand.NewPCG(uint64(l.id)+1, 0x5a4d_0001+uint64(shard))),
	}
	q := l.shardQs[shard]
	for {
		select {
		case <-l.stopped:
			return
		case ev := <-q:
			l.handleShard(ctx, shard, ev)
		burst:
			for n := 1; n < maxBurst; n++ {
				select {
				case next := <-q:
					l.handleShard(ctx, shard, next)
				default:
					break burst
				}
			}
			l.sharder.FlushShard(ctx, shard)
		}
	}
}

// handleShard dispatches one event on a shard worker.
func (l *Loop) handleShard(ctx *shardCtx, shard int, ev event) {
	switch ev.kind {
	case 0:
		l.sharder.OnShardMessage(ctx, shard, ev.from, ev.msg)
	case 2:
		l.sharder.OnShardBatch(ctx, shard, ev.batch)
	}
}

// handle processes one control event; it reports whether the loop must
// stop.
func (l *Loop) handle(ev event) (stop bool) {
	switch ev.kind {
	case 0:
		l.proto.OnMessage(l, ev.from, ev.msg)
	case 1:
		l.mu.Lock()
		live := l.epochs[ev.tag] == ev.epoch
		if live {
			delete(l.timers, ev.tag)
		}
		l.mu.Unlock()
		if live {
			l.proto.OnTimer(l, ev.tag)
		}
	case 2:
		l.proto.OnClientBatch(l, ev.batch)
	case 3:
		return true
	}
	return false
}

func (l *Loop) flush() {
	if l.flusher != nil {
		l.flusher.Flush(l)
	}
}

// Stop terminates the loop and its shard workers.
func (l *Loop) Stop() {
	l.once.Do(func() { close(l.stopped) })
}

// Join blocks until Run and every shard worker have returned — i.e. no
// handler is in flight and none will start. Only valid after Run was
// started; callers tearing down resources the protocol writes to (e.g. a
// journal) must Join between Stop and the teardown.
func (l *Loop) Join() {
	<-l.done
	l.shardsDone.Wait()
}

// shardCtx is the runtime.Context a shard worker hands to the protocol.
// Send/Broadcast/timers delegate to the loop's thread-safe paths; Rand
// draws from a per-shard deterministic stream (the loop's own stream is
// owned by the control goroutine).
type shardCtx struct {
	loop *Loop
	rng  *rand.Rand
}

var _ runtime.Context = (*shardCtx)(nil)

func (c *shardCtx) ID() types.NodeID                      { return c.loop.id }
func (c *shardCtx) Now() time.Duration                    { return time.Since(c.loop.start) }
func (c *shardCtx) Rand() uint64                          { return c.rng.Uint64() }
func (c *shardCtx) Send(to types.NodeID, m types.Message) { c.loop.sender.Send(c.loop.id, to, m) }
func (c *shardCtx) Broadcast(m types.Message)             { c.loop.sender.Broadcast(c.loop.id, m) }
func (c *shardCtx) SetTimer(d time.Duration, tag runtime.TimerTag) {
	c.loop.SetTimer(d, tag)
}
func (c *shardCtx) CancelTimer(tag runtime.TimerTag) { c.loop.CancelTimer(tag) }
