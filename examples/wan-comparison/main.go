// WAN comparison: the paper's Fig. 5 headline claim in one table — on the
// simulated 4-region GCP topology (Table 1 RTTs), Autobahn matches
// Bullshark's throughput while roughly halving its latency, and beats
// both HotStuff variants.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	fmt.Println("Simulated WAN (paper's Table 1 RTTs, one replica per region):")
	harness.Table1(os.Stdout)
	fmt.Println()

	rows := []struct {
		sys  harness.System
		load float64
	}{
		{harness.Autobahn, 200e3},
		{harness.Bullshark, 200e3},
		{harness.BatchedHS, 150e3},
		{harness.VanillaHS, 15e3},
	}
	fmt.Printf("%-11s %12s %14s %12s %10s\n", "system", "offered", "committed/s", "mean lat", "p99")
	results := make(map[harness.System]harness.LoadPoint)
	for _, r := range rows {
		p := harness.MeasurePoint(r.sys, 4, r.load, 15*time.Second, 1)
		results[r.sys] = p
		fmt.Printf("%-11s %12.0f %14.0f %12s %10s\n",
			r.sys, p.Load, p.Throughput,
			p.MeanLat.Round(time.Millisecond), p.P99.Round(time.Millisecond))
	}

	a, b := results[harness.Autobahn], results[harness.Bullshark]
	fmt.Printf("\nAutobahn vs Bullshark at 200k tx/s: %.2fx latency reduction (paper: 2.1x)\n",
		float64(b.MeanLat)/float64(a.MeanLat))
}
