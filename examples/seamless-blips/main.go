// Seamless blips: the paper's headline robustness claim (§2, Fig. 7),
// reproduced on the discrete-event simulator through the public API. A
// replica crashes for 2 seconds under 150k tx/s of load; Autobahn's data
// lanes keep growing through the blip and a single consensus cut commits
// the entire backlog the moment a good interval returns — per-second
// latency spikes only for transactions trapped in the blip and recovers
// instantly (no hangover).
package main

import (
	"fmt"
	"strings"
	"time"

	autobahn "repro"
	"repro/internal/sim"
)

func main() {
	const (
		load      = 150_000 // tx/s (64% of the ~235k peak: headroom for the crashed replica to catch up)
		crashFrom = 10 * time.Second
		crashFor  = 2 * time.Second
		runFor    = 25 * time.Second
	)

	faults := (&sim.FaultSchedule{}).AddDown(1, crashFrom, crashFrom+crashFor)
	cluster := autobahn.NewSimCluster(autobahn.SimOptions{
		Options: autobahn.Options{N: 4, Seed: 7},
		Faults:  faults,
	})
	cluster.SubmitLoad(load, 512, 0, runFor)
	cluster.Run(runFor + 10*time.Second)

	rec := cluster.Recorder
	fmt.Printf("replica r1 crashed during [%vs, %vs) under %d tx/s\n\n",
		crashFrom.Seconds(), (crashFrom + crashFor).Seconds(), load)
	fmt.Println("latency by request start time (the paper's Fig. 7 axes):")
	for _, p := range rec.ArrivalSeries() {
		if p.Second > int(runFor/time.Second) {
			break
		}
		bar := int(p.MeanLat / (50 * time.Millisecond))
		if bar > 70 {
			bar = 70
		}
		marker := ""
		if p.Second >= int(crashFrom/time.Second) && p.Second < int((crashFrom+crashFor)/time.Second) {
			marker = "  <- blip"
		}
		fmt.Printf("  t=%2ds  %8.1fms  |%s%s\n",
			p.Second, float64(p.MeanLat)/float64(time.Millisecond), strings.Repeat("*", bar), marker)
	}

	baseline := rec.MeanLatency(2*time.Second, crashFrom-time.Second)
	hangover := rec.Hangover(crashFrom+crashFor, baseline, 2.0)
	fmt.Printf("\nbaseline latency : %v\n", baseline.Round(time.Millisecond))
	fmt.Printf("total committed  : %d of %d submitted\n", rec.Total(), int(load*runFor.Seconds()))
	fmt.Printf("hangover         : %v (seamless = 0)\n", hangover)
}
