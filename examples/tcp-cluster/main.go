// TCP cluster: four Autobahn replicas speaking real length-framed TCP on
// localhost — the same code path a multi-machine deployment uses (see
// cmd/autobahn-node for the standalone binary). Transactions submitted to
// each replica's lane commit in an identical total order everywhere.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	autobahn "repro"
	"repro/internal/types"
)

func main() {
	opts := autobahn.Options{N: 4, MaxBatchDelay: 25 * time.Millisecond}
	addrs := map[types.NodeID]string{
		0: "127.0.0.1:19470",
		1: "127.0.0.1:19471",
		2: "127.0.0.1:19472",
		3: "127.0.0.1:19473",
	}

	logger := log.New(os.Stderr, "tcp-cluster ", log.Ltime)
	replicas := make([]*autobahn.Replica, 4)
	for id := range addrs {
		r, err := autobahn.NewReplica(id, addrs, opts, logger)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Start(); err != nil {
			log.Fatal(err)
		}
		defer r.Stop()
		replicas[id] = r
	}

	// Submit transactions to every replica over its local API.
	const total = 120
	start := time.Now()
	for i := 0; i < total; i++ {
		tx := fmt.Sprintf("kv-put{key: user%03d, val: balance=%d}", i, 1000+i)
		replicas[i%4].Submit([]byte(tx))
	}

	// Watch replica 2's committed log (any replica shows the same order).
	committed := 0
	for committed < total {
		select {
		case c := <-replicas[2].Commits:
			committed += len(c.Batch.Txs)
			fmt.Printf("r2 committed slot %3d lane %s pos %2d: +%3d txs (%3d/%d, %v)\n",
				c.Slot, c.Lane, c.Position, len(c.Batch.Txs), committed, total,
				time.Since(start).Round(time.Millisecond))
		case <-time.After(15 * time.Second):
			log.Fatalf("timed out with %d/%d committed", committed, total)
		}
	}
	fmt.Printf("\nall %d transactions committed over real TCP in %v\n",
		total, time.Since(start).Round(time.Millisecond))
}
