// Quickstart: a 4-replica Autobahn cluster running in-process in real
// time with full ed25519 signing. Clients submit transactions to every
// replica's lane; the cluster totally orders them and streams the commits
// back in log order.
package main

import (
	"fmt"
	"log"
	"time"

	autobahn "repro"
	"repro/internal/types"
)

func main() {
	cluster, err := autobahn.NewLiveCluster(autobahn.Options{
		N:             4,
		MaxBatchDelay: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	// Submit 200 transactions round-robin across the four lanes.
	const total = 200
	start := time.Now()
	for i := 0; i < total; i++ {
		tx := fmt.Sprintf("transfer{from: acct%03d, to: acct%03d, amount: %d}", i, (i+7)%100, i*10)
		if err := cluster.Submit(types.NodeID(i%4), []byte(tx)); err != nil {
			log.Fatal(err)
		}
	}

	// Consume the total order until every transaction committed.
	committed := 0
	for committed < total {
		select {
		case c := <-cluster.Commits:
			committed += len(c.Batch.Txs)
			fmt.Printf("slot %3d  lane %s pos %2d  +%4d txs  (%4d/%d total, %v elapsed)\n",
				c.Slot, c.Lane, c.Position, len(c.Batch.Txs), committed, total,
				time.Since(start).Round(time.Millisecond))
		case <-time.After(10 * time.Second):
			log.Fatalf("timed out with %d/%d committed", committed, total)
		}
	}
	fmt.Printf("\nall %d transactions totally ordered in %v\n", total, time.Since(start).Round(time.Millisecond))
}
