package autobahn

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/types"
)

// waitGoroutines polls until the process goroutine count drops to max,
// dumping stacks on timeout. Regression check for the flush-loop leak:
// Stop used to leave the ticker loop running forever, submitting batches
// to a stopped mesh.
func waitGoroutines(t *testing.T, max int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= max {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", goruntime.NumGoroutine(), max, buf[:n])
}

func TestLiveClusterStopTerminatesFlushLoop(t *testing.T) {
	base := goruntime.NumGoroutine()
	lc, err := NewLiveCluster(Options{N: 4, MaxBatchDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lc.Start()
	if err := lc.Submit(0, []byte("leak-probe")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-lc.Commits:
	case <-time.After(10 * time.Second):
		t.Fatal("no commit before stop")
	}
	lc.Stop()
	lc.Stop() // idempotent
	waitGoroutines(t, base+2)
}

func TestReplicaStopTerminatesFlushLoop(t *testing.T) {
	base := goruntime.NumGoroutine()
	addrs := freeAddrs(t, 4)
	// Start only replica 0: the leak is in its own flush loop, no quorum
	// needed.
	r, err := NewReplica(0, addrs, Options{N: 4, MaxBatchDelay: 10 * time.Millisecond},
		log.New(os.Stderr, "r0 ", 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Submit([]byte("leak-probe"))
	time.Sleep(50 * time.Millisecond) // let the flush ticker run
	r.Stop()
	r.Stop() // idempotent
	waitGoroutines(t, base+2)
}

// freeAddrs reserves n distinct localhost ports.
func freeAddrs(t *testing.T, n int) map[types.NodeID]string {
	t.Helper()
	addrs := make(map[types.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[types.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestReplicaRestartRecoversFromWAL is the real-runtime recovery path:
// a 4-replica TCP deployment commits traffic, one replica's process
// stops and is rebuilt from its -wal journal, and it rejoins — resuming
// from its committed frontier and committing new slots with its peers.
func TestReplicaRestartRecoversFromWAL(t *testing.T) {
	// Single-threaded data plane and the sharded one (4 workers per
	// replica): crash-restart recovery must hold in both, and the sharded
	// run additionally exercises per-shard group commit + concurrent
	// journal appends under -race.
	t.Run("shards=1", func(t *testing.T) { testReplicaRestartRecoversFromWAL(t, 1) })
	t.Run("shards=4", func(t *testing.T) { testReplicaRestartRecoversFromWAL(t, 4) })
}

func testReplicaRestartRecoversFromWAL(t *testing.T, shards int) {
	if testing.Short() {
		t.Skip("TCP e2e")
	}
	addrs := freeAddrs(t, 4)
	dir := t.TempDir()
	opts := func(id int) Options {
		return Options{
			N:             4,
			MaxBatchDelay: 20 * time.Millisecond,
			WALPath:       filepath.Join(dir, fmt.Sprintf("r%d.wal", id)),
			DataShards:    shards,
		}
	}
	replicas := make([]*Replica, 4)
	for i := range replicas {
		r, err := NewReplica(types.NodeID(i), addrs, opts(i), log.New(os.Stderr, fmt.Sprintf("r%d ", i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	submit := func(tag string, n int) {
		for i := 0; i < n; i++ {
			replicas[0].Submit([]byte(fmt.Sprintf("%s-%04d", tag, i)))
		}
	}
	// awaitCommits drains replica `id`'s commit stream until it has seen
	// `want` transactions with the given tag, returning the highest slot.
	awaitCommits := func(id int, tag string, want int) types.Slot {
		t.Helper()
		var maxSlot types.Slot
		got := 0
		deadline := time.After(30 * time.Second)
		for got < want {
			select {
			case c := <-replicas[id].Commits:
				if c.Slot > maxSlot {
					maxSlot = c.Slot
				}
				for _, tx := range c.Batch.Txs {
					if len(tx) > len(tag) && string(tx[:len(tag)]) == tag {
						got++
					}
				}
			case <-deadline:
				t.Fatalf("replica %d committed only %d/%d %q txs", id, got, want, tag)
			}
		}
		return maxSlot
	}

	submit("pre", 100)
	preSlot := awaitCommits(3, "pre", 100)

	// Crash replica 3 and rebuild its process from the same WAL.
	replicas[3].Stop()
	r3, err := NewReplica(3, addrs, opts(3), log.New(os.Stderr, "r3' ", 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Start(); err != nil {
		t.Fatal(err)
	}
	replicas[3] = r3

	submit("post", 100)
	postSlot := awaitCommits(3, "post", 100)
	if postSlot <= preSlot {
		t.Fatalf("restarted replica did not advance: pre-crash slot %d, post-restart slot %d", preSlot, postSlot)
	}
	t.Logf("replica 3 resumed: pre-crash slot %d, post-restart slot %d", preSlot, postSlot)
}
