// Package autobahn is a from-scratch Go implementation of Autobahn
// ("Autobahn: Seamless high speed BFT", SOSP 2024): a Byzantine
// fault-tolerant state machine replication protocol that combines a
// highly parallel asynchronous data dissemination layer (lanes of cars
// certified by proofs of availability) with a low-latency, partially
// synchronous consensus layer that commits cuts of lane tips — matching
// DAG-BFT throughput at roughly half its latency while recovering from
// blips seamlessly, with commit complexity independent of backlog size.
//
// The package offers three deployment styles:
//
//   - SimCluster: a deterministic discrete-event simulation over a modeled
//     WAN (the paper's 4-region GCP topology by default) — what the
//     benchmark harness uses to regenerate the paper's figures.
//   - LiveCluster: an in-process real-time cluster (goroutine per replica,
//     channel transport) for quickstarts and integration testing.
//   - Replica: a single replica speaking length-framed TCP to its peers,
//     for real multi-process deployments (see cmd/autobahn-node).
//
// The protocol implementation lives in internal/ packages (lane,
// consensus, fetch, order, core); the baselines the paper compares
// against (HotStuff variants, Bullshark) are in internal/hotstuff and
// internal/bullshark, driven by internal/harness.
package autobahn

import (
	"fmt"
	gort "runtime"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/gateway"
	"repro/internal/runtime"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options configures an Autobahn deployment. The zero value plus N yields
// the paper's evaluation configuration (§6): fast path on, optimistic
// tips on, 1s view timeout, 1000-tx / 500KB batches sealed within 100ms.
type Options struct {
	// N is the committee size (3f+1; required).
	N int
	// Seed drives deterministic key generation and simulation randomness.
	Seed uint64
	// VerifySignatures enables full ed25519 signing and verification.
	// Real-time deployments should leave this on (default for Live/TCP);
	// large simulations may disable it (the simulator charges crypto
	// through its processing model instead).
	VerifySignatures bool

	// DisableFastPath turns off the single-round commit (§5.2.1).
	DisableFastPath bool
	// DisableOptimisticTips restricts cuts to certified tips (§5.5.2).
	DisableOptimisticTips bool
	// ViewTimeout is the consensus progress timer (default 1s).
	ViewTimeout time.Duration
	// MaxParallelSlots bounds concurrent consensus instances, k (§5.4,
	// default 4).
	MaxParallelSlots int
	// Coverage is the lane-coverage threshold (§5.2.3, default n-f).
	Coverage int

	// MaxBatchTxs / MaxBatchBytes / MaxBatchDelay configure mempool
	// batching (defaults 1000 / 500KB / 100ms, §6).
	MaxBatchTxs   int
	MaxBatchBytes uint64
	MaxBatchDelay time.Duration

	// VerifyWorkers sizes the transport's parallel signature
	// pre-verification stage (default GOMAXPROCS). Real-time runtimes
	// only; the simulator charges crypto through its network model.
	VerifyWorkers int

	// DataShards sizes the parallel data plane: lane traffic (cars, lane
	// votes, sync payloads) is processed on this many worker goroutines —
	// lane i on shard i mod DataShards, preserving per-lane FIFO — while
	// consensus stays on the serialized control loop (§4: dissemination
	// is embarrassingly parallel per lane; agreement is not). 0 = auto
	// (min(GOMAXPROCS, N); single-core machines stay unsharded), 1 =
	// disabled. Real-time runtimes only; the simulator always runs
	// unsharded so fixed-seed runs stay bit-reproducible.
	DataShards int

	// Adversaries marks replicas as Byzantine in real-time deployments:
	// each named replica is wrapped with the internal/adversary behavior
	// of that name (active for the deployment's lifetime), exercising the
	// protocol against hostile — not just crashed — participants. Shipped
	// behaviors: equivocate, withhold-votes, conflict-votes, bogus-sync,
	// suppress-tips, timeout-spam. At most f replicas may be adversarial
	// for the protocol's guarantees to hold. Real-time runtimes only;
	// simulations schedule behaviors (with time windows) through
	// SimOptions.Faults (sim.FaultSchedule.AddBehavior). Adversarial
	// replicas always run unsharded: behaviors are single-threaded.
	Adversaries map[types.NodeID]string

	// LinkFaults, when set, injects transport-level faults — drop, delay,
	// duplicate, reorder, per peer and priority plane — into this
	// deployment's egress (LiveCluster: the in-process mesh; Replica: this
	// replica's TCP mesh). Composes with Adversaries: behaviors decide
	// what a replica sends, LinkFaults decides what the network does to
	// it. See transport.NewLinkFaults.
	LinkFaults *transport.LinkFaults

	// GossipFanout, when > 0, replaces full-mesh car broadcast with
	// fanout-k gossip on real-time transports (LiveCluster, Replica):
	// origins send each car to k random peers and every replica relays
	// it once on first sight, cutting per-node data-plane egress from
	// O(n·payload) to O(k·payload). k ≈ log2(N)+1 reaches everyone with
	// overwhelming probability; the lane retransmission timer and sync
	// fetches backstop the tail. Real-time runtimes only — the simulator
	// models full-mesh dissemination and ignores this.
	GossipFanout int

	// DeltaCuts makes real-time transports delta-compress cut-bearing
	// consensus frames (Prepare, CommitNotice) against each connection's
	// previously sent cut, re-encoding only changed tips. Receivers need
	// no flag (delta decoding is always on), and any gap or reconnect
	// falls back to full frames. Real-time runtimes only.
	DeltaCuts bool

	// SequentialCerts is the large-committee benchmark baseline: disable
	// certificate batch verification, whole-certificate memoization and
	// the share memo, paying one raw signature verification per share on
	// every certificate arrival. Requires VerifySignatures.
	SequentialCerts bool

	// Execution enables the deterministic execution layer: committed
	// entries run through an account state machine (internal/exec) and
	// every delivered Committed carries the machine's running AppHash,
	// the cross-replica execution oracle.
	Execution bool
	// SnapshotEvery checkpoints the execution state every this many
	// slots, truncating the journal and lane stores beneath the
	// checkpoint and enabling snapshot-based state sync (a replica far
	// behind fetches state in O(state) instead of replaying O(history)).
	// 0 disables. Requires Execution; snapshots persist beside the WAL
	// for a Replica (WALPath + ".snap") and in cluster-retained memory
	// stores for simulated deployments.
	SnapshotEvery types.Slot

	// WALPath, when set, makes a Replica journal its safety-critical
	// protocol state to this write-ahead log before externalizing it and
	// recover from it on restart (the paper's RocksDB persistence,
	// substituted by internal/storage). Single-replica runtimes only.
	WALPath string
	// WALSyncEvery fsyncs the journal after this many records (0 = rely
	// on OS flush; each record is still written out immediately).
	WALSyncEvery int
	// WALFaults, when set, routes the replica's WAL file operations
	// through a seeded fault plan (write errors, short writes, failed
	// fsyncs, a crash point) — the storage half of the chaos harness. A
	// journal failure is replica-fatal: the replica halts and shuts
	// itself down, reporting through Replica.Fatal. Requires WALPath.
	WALFaults *storage.FaultPlan

	// StallTimeout, when > 0, arms the TCP mesh's per-peer stall
	// detector: a peer this replica keeps sending to without hearing
	// anything back for the timeout (or that holds an egress write
	// blocked that long) has its connections torn down and redialed with
	// jittered backoff, instead of wedging silently behind an open but
	// dead TCP session. Replica (TCP) runtimes only; 0 disables.
	StallTimeout time.Duration

	// GatewayAddr, when set, attaches the client gateway tier to a
	// Replica on this listen address: per-client submission windows with
	// sliding dedup, depth-based admission control with typed rejections
	// and priority shedding, and streamed commit acknowledgments (see
	// internal/gateway). Clients speak the gateway protocol
	// (gateway.Client, autobahn-client -gateway) instead of the bare
	// newline port. Replica (TCP) runtimes only.
	GatewayAddr string
	// Gateway tunes the gateway tier (window sizes, admission depth
	// bounds, frame cap); the zero value gets defaults. Only meaningful
	// with GatewayAddr.
	Gateway gateway.Options
}

func (o Options) committee() types.Committee { return types.NewCommittee(o.N) }

// validateAdversaries enforces the ≤ f bound at configuration time:
// every quorum argument (PoA f+1, consensus 2f+1, mutiny f+1) assumes
// at most f Byzantine replicas, so a scenario exceeding it would report
// protocol "violations" that are really misconfigurations.
func (o Options) validateAdversaries() error {
	if len(o.Adversaries) == 0 {
		return nil
	}
	f := (o.N - 1) / 3
	if len(o.Adversaries) > f {
		return fmt.Errorf("autobahn: %d adversaries exceeds f=%d for n=%d", len(o.Adversaries), f, o.N)
	}
	for id := range o.Adversaries {
		if int(id) >= o.N {
			return fmt.Errorf("autobahn: adversary %s outside committee of %d", id, o.N)
		}
	}
	return nil
}

func (o Options) suite() crypto.Suite {
	if o.VerifySignatures {
		return crypto.NewEd25519Suite(o.N, o.seedOr(1))
	}
	return crypto.NewNopSuite(o.N)
}

func (o Options) seedOr(d uint64) uint64 {
	if o.Seed == 0 {
		return d
	}
	return o.Seed
}

// dataShards resolves DataShards for real-time runtimes: 0 = auto-size
// to the hardware (one shard per core up to the lane count — more shards
// than lanes would idle). Explicit values are respected, clamped to the
// committee size by core.Config.
func (o Options) dataShards() int {
	if o.DataShards != 0 {
		return o.DataShards
	}
	w := gort.GOMAXPROCS(0)
	if w > o.N {
		w = o.N
	}
	return w
}

// nodeConfig translates Options into the internal replica configuration.
func (o Options) nodeConfig(self types.NodeID, suite crypto.Suite, sink runtime.CommitSink) core.Config {
	return core.Config{
		Committee:        o.committee(),
		Self:             self,
		Suite:            suite,
		VerifySigs:       o.VerifySignatures,
		SequentialVerify: o.SequentialCerts,
		FastPath:         !o.DisableFastPath,
		OptimisticTips:   !o.DisableOptimisticTips,
		ViewTimeout:      o.ViewTimeout,
		MaxParallel:      o.MaxParallelSlots,
		Coverage:         o.Coverage,
		Execution:        o.Execution,
		SnapshotEvery:    o.SnapshotEvery,
		Sink:             sink,
	}
}

// Committed is one totally-ordered, execution-ready batch delivered by a
// replica, in log order.
type Committed struct {
	// Replica is the replica reporting the commit.
	Replica types.NodeID
	// Lane and Position locate the batch in the data layer.
	Lane     types.NodeID
	Position types.Pos
	// Slot is the consensus decision that committed it.
	Slot types.Slot
	// Batch holds the transactions.
	Batch *types.Batch
	// AppHash is the execution layer's chain hash after this batch (zero
	// when execution is disabled).
	AppHash types.Digest
	// At is the replica-local commit time (since deployment epoch).
	At time.Duration
}
